/**
 * @file
 * Instruction pool implementation and built-in ARM/x86 pools.
 *
 * Effective energies are calibrated so that a core model sustaining
 * two short integer ops per cycle at ~1 GHz and 1 V draws on the
 * order of half an amp — representative of the mobile/desktop cores
 * in the paper. Long-latency instructions spread less energy per
 * cycle, making them the GA's "low-current" phase material.
 */

#include "isa/pool.h"

#include <fstream>
#include <sstream>

#include "isa/xml.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace isa {

std::string
isaFamilyName(IsaFamily isa)
{
    switch (isa) {
      case IsaFamily::ArmV8:  return "armv8";
      case IsaFamily::X86_64: return "x86-64";
    }
    return "unknown";
}

InstructionPool::InstructionPool(IsaFamily isa, int int_regs, int fp_regs,
                                 int simd_regs, int mem_slots)
    : isa_(isa), int_regs_(int_regs), fp_regs_(fp_regs),
      simd_regs_(simd_regs), mem_slots_(mem_slots)
{
    requireConfig(int_regs >= 1 && fp_regs >= 0 && simd_regs >= 0
                      && mem_slots >= 0,
                  "invalid pool resource counts");
}

InstructionPool
InstructionPool::armV8()
{
    InstructionPool pool(IsaFamily::ArmV8, 8, 8, 8, 4);
    using C = InstrClass;
    using R = RegFile;
    // Short-latency integer: the high-current filler.
    pool.addInstruction({"MOV", C::IntShort, 1, 1, true, R::Int,
                         nano(0.18)});
    pool.addInstruction({"ADD", C::IntShort, 1, 2, true, R::Int,
                         nano(0.20)});
    pool.addInstruction({"SUB", C::IntShort, 1, 2, true, R::Int,
                         nano(0.20)});
    pool.addInstruction({"EOR", C::IntShort, 1, 2, true, R::Int,
                         nano(0.19)});
    // Long-latency integer: pipeline-stalling, low current.
    pool.addInstruction({"MUL", C::IntLong, 4, 2, true, R::Int,
                         nano(0.30)});
    pool.addInstruction({"SDIV", C::IntLong, 12, 2, true, R::Int,
                         nano(0.40)});
    // Floating point.
    pool.addInstruction({"FADD", C::FpShort, 3, 2, true, R::Fp,
                         nano(0.40)});
    pool.addInstruction({"FMUL", C::FpShort, 4, 2, true, R::Fp,
                         nano(0.45)});
    pool.addInstruction({"FDIV", C::FpLong, 10, 2, true, R::Fp,
                         nano(0.50)});
    pool.addInstruction({"FSQRT", C::FpLong, 12, 1, true, R::Fp,
                         nano(0.50)});
    // SIMD (wide datapath: highest per-op energy).
    pool.addInstruction({"VADD", C::SimdShort, 3, 2, true, R::Simd,
                         nano(0.60)});
    pool.addInstruction({"VMUL", C::SimdShort, 4, 2, true, R::Simd,
                         nano(0.65)});
    pool.addInstruction({"VSQRT", C::SimdLong, 12, 1, true, R::Simd,
                         nano(0.70)});
    // Memory (always L1 hits). Loads/stores engage pipeline + L1.
    pool.addInstruction({"LDR", C::Load, 3, 0, true, R::Int,
                         nano(0.35)});
    pool.addInstruction({"STR", C::Store, 1, 1, false, R::Int,
                         nano(0.32)});
    // Dummy unconditional branch to the next instruction.
    pool.addInstruction({"B", C::Branch, 1, 0, false, R::None,
                         nano(0.10)});
    return pool;
}

InstructionPool
InstructionPool::x86Sse2()
{
    InstructionPool pool(IsaFamily::X86_64, 8, 8, 8, 4);
    using C = InstrClass;
    using R = RegFile;
    pool.addInstruction({"MOV", C::IntShort, 1, 1, true, R::Int,
                         nano(0.20)});
    pool.addInstruction({"ADD", C::IntShort, 1, 2, true, R::Int,
                         nano(0.22)});
    pool.addInstruction({"SUB", C::IntShort, 1, 2, true, R::Int,
                         nano(0.22)});
    pool.addInstruction({"XOR", C::IntShort, 1, 2, true, R::Int,
                         nano(0.21)});
    pool.addInstruction({"IMUL", C::IntLong, 3, 2, true, R::Int,
                         nano(0.33)});
    pool.addInstruction({"IDIV", C::IntLong, 20, 2, true, R::Int,
                         nano(0.50)});
    // Scalar SSE2 floating point.
    pool.addInstruction({"ADDSD", C::FpShort, 3, 2, true, R::Fp,
                         nano(0.45)});
    pool.addInstruction({"MULSD", C::FpShort, 5, 2, true, R::Fp,
                         nano(0.50)});
    pool.addInstruction({"DIVSD", C::FpLong, 15, 2, true, R::Fp,
                         nano(0.55)});
    pool.addInstruction({"SQRTSD", C::FpLong, 20, 1, true, R::Fp,
                         nano(0.55)});
    // Packed SSE2.
    pool.addInstruction({"PADDD", C::SimdShort, 2, 2, true, R::Simd,
                         nano(0.65)});
    pool.addInstruction({"MULPD", C::SimdShort, 5, 2, true, R::Simd,
                         nano(0.70)});
    pool.addInstruction({"SQRTPD", C::SimdLong, 20, 1, true, R::Simd,
                         nano(0.75)});
    // x86 memory operands: integer ops reading/writing memory
    // (Section 3.3: "memory operations are implemented by using
    // memory address operands for integer instructions").
    pool.addInstruction({"ADDmem", C::IntShortMem, 4, 1, true, R::Int,
                         nano(0.48)});
    pool.addInstruction({"IMULmem", C::IntLongMem, 8, 1, true, R::Int,
                         nano(0.58)});
    return pool;
}

std::size_t
InstructionPool::addInstruction(const InstrDef &def)
{
    requireConfig(!def.mnemonic.empty(), "instruction needs a mnemonic");
    requireConfig(def.latency >= 1, def.mnemonic + ": latency >= 1");
    requireConfig(def.sources <= 2, def.mnemonic + ": at most 2 sources");
    requireConfig(def.energy >= 0.0,
                  def.mnemonic + ": energy must be non-negative");
    for (const auto &d : defs_)
        requireConfig(d.mnemonic != def.mnemonic,
                      "duplicate mnemonic " + def.mnemonic);
    defs_.push_back(def);
    return defs_.size() - 1;
}

const InstrDef &
InstructionPool::def(std::size_t index) const
{
    requireConfig(index < defs_.size(), "definition index out of range");
    return defs_[index];
}

std::size_t
InstructionPool::defIndex(const std::string &mnemonic) const
{
    for (std::size_t i = 0; i < defs_.size(); ++i)
        if (defs_[i].mnemonic == mnemonic)
            return i;
    throw ConfigError("no instruction named " + mnemonic);
}

int
InstructionPool::regCount(RegFile file) const
{
    switch (file) {
      case RegFile::Int:  return int_regs_;
      case RegFile::Fp:   return fp_regs_;
      case RegFile::Simd: return simd_regs_;
      case RegFile::None: return 0;
    }
    return 0;
}

Instruction
InstructionPool::randomInstruction(Rng &rng) const
{
    requireConfig(!defs_.empty(), "pool has no instructions");
    Instruction instr;
    instr.def_index = rng.index(defs_.size());
    randomizeOperands(instr, rng);
    return instr;
}

void
InstructionPool::randomizeOperands(Instruction &instr, Rng &rng) const
{
    const InstrDef &d = def(instr.def_index);
    const int regs = regCount(d.reg_file);
    instr.dest = -1;
    instr.src = {-1, -1};
    instr.mem_slot = -1;
    if (d.has_dest && regs > 0)
        instr.dest = rng.uniformInt(0, regs - 1);
    for (unsigned s = 0; s < d.sources; ++s)
        if (regs > 0)
            instr.src[s] = rng.uniformInt(0, regs - 1);
    if (isMemoryClass(d.cls) && mem_slots_ > 0)
        instr.mem_slot = rng.uniformInt(0, mem_slots_ - 1);
}

void
InstructionPool::validate(const Instruction &instr) const
{
    const InstrDef &d = def(instr.def_index);
    const int regs = regCount(d.reg_file);
    if (d.has_dest)
        requireConfig(instr.dest >= 0 && instr.dest < regs,
                      d.mnemonic + ": bad destination register");
    for (unsigned s = 0; s < d.sources; ++s)
        requireConfig(instr.src[s] >= 0 && instr.src[s] < regs,
                      d.mnemonic + ": bad source register");
    if (isMemoryClass(d.cls))
        requireConfig(instr.mem_slot >= 0 && instr.mem_slot < mem_slots_,
                      d.mnemonic + ": bad memory slot");
}

std::string
InstructionPool::toAssembly(const Instruction &instr) const
{
    const InstrDef &d = def(instr.def_index);
    const char prefix = d.reg_file == RegFile::Fp ? 'f'
        : d.reg_file == RegFile::Simd            ? 'v'
                                                 : 'r';
    std::ostringstream os;
    os << d.mnemonic;
    bool first = true;
    auto sep = [&]() {
        os << (first ? " " : ", ");
        first = false;
    };
    if (d.cls == InstrClass::Branch) {
        os << " .next";
        return os.str();
    }
    if (d.has_dest) {
        sep();
        os << prefix << instr.dest;
    }
    if (isX86MemOperandClass(d.cls) || d.cls == InstrClass::Load
        || d.cls == InstrClass::Store) {
        sep();
        os << "[mem" << instr.mem_slot << "]";
    }
    for (unsigned s = 0; s < d.sources; ++s) {
        sep();
        os << prefix << instr.src[s];
    }
    return os.str();
}

InstructionPool
InstructionPool::fromXmlString(const std::string &xml)
{
    const XmlNode root = parseXml(xml);
    requireConfig(root.name == "pool", "pool XML root must be <pool>");
    const std::string isa_name = root.attr("isa");
    IsaFamily isa;
    if (isa_name == "armv8")
        isa = IsaFamily::ArmV8;
    else if (isa_name == "x86-64")
        isa = IsaFamily::X86_64;
    else
        throw ConfigError("unknown isa: " + isa_name);

    const XmlNode &regs = root.child("registers");
    InstructionPool pool(
        isa, static_cast<int>(regs.attrNumber("int")),
        static_cast<int>(regs.attrNumber("fp")),
        static_cast<int>(regs.attrNumber("simd")),
        static_cast<int>(regs.attrNumber("mem_slots")));

    for (const XmlNode *in : root.childrenNamed("instruction")) {
        InstrDef d;
        d.mnemonic = in->attr("mnemonic");
        d.cls = instrClassFromName(in->attr("class"));
        d.latency = static_cast<unsigned>(in->attrNumber("latency"));
        d.sources = static_cast<unsigned>(in->attrNumber("sources"));
        d.has_dest = in->attrOr("dest", "true") == "true";
        d.energy = in->attrNumber("energy");
        const std::string rf = in->attrOr("regfile", "int");
        if (rf == "int")
            d.reg_file = RegFile::Int;
        else if (rf == "fp")
            d.reg_file = RegFile::Fp;
        else if (rf == "simd")
            d.reg_file = RegFile::Simd;
        else if (rf == "none")
            d.reg_file = RegFile::None;
        else
            throw ConfigError("unknown regfile: " + rf);
        pool.addInstruction(d);
    }
    requireConfig(!pool.defs().empty(),
                  "pool XML contains no <instruction> elements");
    return pool;
}

InstructionPool
InstructionPool::fromXmlFile(const std::string &path)
{
    std::ifstream f(path);
    requireConfig(f.good(), "cannot open pool XML file: " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    return fromXmlString(buf.str());
}

std::string
InstructionPool::toXmlString() const
{
    std::ostringstream os;
    os << "<pool isa=\"" << isaFamilyName(isa_) << "\">\n";
    os << "  <registers int=\"" << int_regs_ << "\" fp=\"" << fp_regs_
       << "\" simd=\"" << simd_regs_ << "\" mem_slots=\"" << mem_slots_
       << "\"/>\n";
    for (const auto &d : defs_) {
        const char *rf = d.reg_file == RegFile::Int ? "int"
            : d.reg_file == RegFile::Fp             ? "fp"
            : d.reg_file == RegFile::Simd           ? "simd"
                                                    : "none";
        os << "  <instruction mnemonic=\"" << d.mnemonic
           << "\" class=\"" << instrClassName(d.cls) << "\" latency=\""
           << d.latency << "\" sources=\"" << d.sources << "\" dest=\""
           << (d.has_dest ? "true" : "false") << "\" regfile=\"" << rf
           << "\" energy=\"" << d.energy << "\"/>\n";
    }
    os << "</pool>\n";
    return os.str();
}

} // namespace isa
} // namespace emstress
