/**
 * @file
 * Instruction pools: the user-specified set of instructions, register
 * resources and memory slots the GA may draw from (paper Section 3.2:
 * described in an XML input file; Section 3.3: instruction and data
 * mix). Built-in pools model the ARMv8 and x86-64/SSE2 mixes used in
 * the paper.
 */

#ifndef EMSTRESS_ISA_POOL_H
#define EMSTRESS_ISA_POOL_H

#include <cstddef>
#include <string>
#include <vector>

#include "isa/instr.h"
#include "util/rng.h"

namespace emstress {
namespace isa {

/** ISA family of a pool. */
enum class IsaFamily
{
    ArmV8,
    X86_64,
};

/** Name of an ISA family. */
std::string isaFamilyName(IsaFamily isa);

/**
 * A pool of selectable instructions plus the operand resources
 * (architectural registers per namespace and pre-initialized memory
 * slots — all loads/stores hit the L1 by construction, per the
 * paper's deliberate avoidance of cache-miss nondeterminism).
 */
class InstructionPool
{
  public:
    /**
     * Construct an empty pool.
     * @param isa      ISA family.
     * @param int_regs  Architectural integer registers available.
     * @param fp_regs   Floating-point registers available.
     * @param simd_regs SIMD registers available.
     * @param mem_slots Distinct pre-initialized memory addresses.
     */
    InstructionPool(IsaFamily isa, int int_regs, int fp_regs,
                    int simd_regs, int mem_slots);

    /** Built-in ARMv8 pool matching the paper's Section 3.3 mix. */
    static InstructionPool armV8();

    /** Built-in x86-64/SSE2 pool matching the paper's AMD mix. */
    static InstructionPool x86Sse2();

    /** Load a pool from an XML string (see docs/pool format). */
    static InstructionPool fromXmlString(const std::string &xml);

    /** Load a pool from an XML file. */
    static InstructionPool fromXmlFile(const std::string &path);

    /** Serialize to the XML pool format (round-trips fromXmlString). */
    std::string toXmlString() const;

    /** Add one instruction definition. Returns its def index. */
    std::size_t addInstruction(const InstrDef &def);

    /** ISA family. */
    IsaFamily isa() const { return isa_; }

    /** All definitions. */
    const std::vector<InstrDef> &defs() const { return defs_; }

    /** Definition by index (bounds-checked). */
    const InstrDef &def(std::size_t index) const;

    /** Definition index by mnemonic. @throws ConfigError if absent. */
    std::size_t defIndex(const std::string &mnemonic) const;

    /** Register count for a namespace. */
    int regCount(RegFile file) const;

    /** Number of memory slots. */
    int memSlots() const { return mem_slots_; }

    /**
     * Generate a uniformly random instruction: random definition,
     * random legal operands.
     */
    Instruction randomInstruction(Rng &rng) const;

    /** Re-randomize only the operands of an existing instruction. */
    void randomizeOperands(Instruction &instr, Rng &rng) const;

    /**
     * Validate that an instruction is well-formed for this pool
     * (definition exists, operands within resource bounds).
     * @throws ConfigError describing the first violation.
     */
    void validate(const Instruction &instr) const;

    /** Render one instruction as assembly-like text. */
    std::string toAssembly(const Instruction &instr) const;

  private:
    IsaFamily isa_;
    int int_regs_;
    int fp_regs_;
    int simd_regs_;
    int mem_slots_;
    std::vector<InstrDef> defs_;
};

} // namespace isa
} // namespace emstress

#endif // EMSTRESS_ISA_POOL_H
