/**
 * @file
 * Instruction class name mapping.
 */

#include "isa/instr.h"

#include "util/error.h"

namespace emstress {
namespace isa {

std::string
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntShort:    return "int_short";
      case InstrClass::IntLong:     return "int_long";
      case InstrClass::FpShort:     return "fp_short";
      case InstrClass::FpLong:      return "fp_long";
      case InstrClass::SimdShort:   return "simd_short";
      case InstrClass::SimdLong:    return "simd_long";
      case InstrClass::Load:        return "load";
      case InstrClass::Store:       return "store";
      case InstrClass::Branch:      return "branch";
      case InstrClass::IntShortMem: return "int_short_mem";
      case InstrClass::IntLongMem:  return "int_long_mem";
    }
    return "unknown";
}

InstrClass
instrClassFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumInstrClasses; ++i) {
        const auto cls = static_cast<InstrClass>(i);
        if (instrClassName(cls) == name)
            return cls;
    }
    throw ConfigError("unknown instruction class: " + name);
}

bool
isMemoryClass(InstrClass cls)
{
    switch (cls) {
      case InstrClass::Load:
      case InstrClass::Store:
      case InstrClass::IntShortMem:
      case InstrClass::IntLongMem:
        return true;
      default:
        return false;
    }
}

bool
isX86MemOperandClass(InstrClass cls)
{
    return cls == InstrClass::IntShortMem
        || cls == InstrClass::IntLongMem;
}

} // namespace isa
} // namespace emstress
