/**
 * @file
 * A Kernel is a loop body of instructions — the unit of execution the
 * GA evolves ("individual", Section 3.1: each sequence of assembly
 * instructions represents an individual) and the core model runs in a
 * loop against the PDN.
 */

#ifndef EMSTRESS_ISA_KERNEL_H
#define EMSTRESS_ISA_KERNEL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.h"
#include "isa/pool.h"
#include "util/rng.h"

namespace emstress {
namespace isa {

/**
 * An instruction loop body. Value-semantic; comparable so tests and
 * the GA can detect convergence/clones.
 */
class Kernel
{
  public:
    /** Empty kernel. */
    Kernel() = default;

    /** Kernel from an explicit instruction sequence. */
    explicit Kernel(std::vector<Instruction> code)
        : code_(std::move(code))
    {}

    /**
     * Uniformly random kernel of a given length — the GA's initial
     * seed material.
     */
    static Kernel random(const InstructionPool &pool, std::size_t length,
                         Rng &rng);

    /** Number of instructions in the loop body. */
    std::size_t size() const { return code_.size(); }

    /** True when the kernel holds no instructions. */
    bool empty() const { return code_.empty(); }

    /** Instruction access. */
    const Instruction &operator[](std::size_t i) const
    {
        return code_[i];
    }

    /** Mutable instruction access. */
    Instruction &operator[](std::size_t i) { return code_[i]; }

    /** The underlying sequence. */
    const std::vector<Instruction> &code() const { return code_; }

    /** Mutable access for GA operators. */
    std::vector<Instruction> &code() { return code_; }

    /**
     * Per-class instruction counts, indexed by InstrClass value —
     * the raw material for the paper's Table 2 mix breakdown.
     */
    std::array<std::size_t, kNumInstrClasses>
    classHistogram(const InstructionPool &pool) const;

    /** Fraction of instructions in a class (0 when empty). */
    double classFraction(const InstructionPool &pool,
                         InstrClass cls) const;

    /** Validate every instruction against a pool. */
    void validate(const InstructionPool &pool) const;

    /** Multi-line assembly listing with a loop label and back-branch. */
    std::string toAssembly(const InstructionPool &pool) const;

    /**
     * Serialize to a plain-text format ("MNEMONIC dest src0 src1
     * mem" per line) that deserialize() reads back. Used to persist
     * GA-generated viruses between experiment runs.
     */
    std::string serialize(const InstructionPool &pool) const;

    /**
     * Parse a kernel from serialize() output.
     * @throws ConfigError on unknown mnemonics or malformed lines.
     */
    static Kernel deserialize(const InstructionPool &pool,
                              const std::string &text);

    /** Structural equality (same defs and operands). */
    bool operator==(const Kernel &other) const;

    /**
     * Stable 64-bit structural hash of the instruction genome
     * (FNV-1a over defs and operands). Equal kernels hash equally
     * across runs and processes; the GA's fitness memoizer keys on
     * it and the platform evaluators derive per-kernel measurement
     * noise from it.
     */
    std::uint64_t hash() const;

  private:
    std::vector<Instruction> code_;
};

} // namespace isa
} // namespace emstress

#endif // EMSTRESS_ISA_KERNEL_H
