/**
 * @file
 * Minimal XML parser for instruction-pool input files. The paper's GA
 * framework takes "the assembly instructions used in the GA
 * optimization described by the user in an XML input file"
 * (Section 3.2); this parser supports the subset needed for that:
 * nested elements, attributes, comments, self-closing tags and the
 * five standard character entities.
 */

#ifndef EMSTRESS_ISA_XML_H
#define EMSTRESS_ISA_XML_H

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace emstress {
namespace isa {

/** A parsed XML element. */
struct XmlNode
{
    std::string name;                        ///< Tag name.
    std::map<std::string, std::string> attrs; ///< Attributes.
    std::vector<XmlNode> children;           ///< Child elements.
    std::string text;                        ///< Concatenated text.

    /** True if the attribute exists. */
    bool hasAttr(const std::string &key) const;

    /**
     * Attribute value.
     * @throws ConfigError when the attribute is absent.
     */
    const std::string &attr(const std::string &key) const;

    /** Attribute value with a default when absent. */
    std::string attrOr(const std::string &key,
                       const std::string &fallback) const;

    /**
     * Attribute parsed as a number.
     * @throws ConfigError when absent or not numeric.
     */
    double attrNumber(const std::string &key) const;

    /** All children with a given tag name. */
    std::vector<const XmlNode *>
    childrenNamed(const std::string &name) const;

    /**
     * The single child with a given tag name.
     * @throws ConfigError when missing or ambiguous.
     */
    const XmlNode &child(const std::string &name) const;
};

/**
 * Parse an XML document from text.
 * @return The root element.
 * @throws ConfigError with a line number on malformed input.
 */
XmlNode parseXml(std::string_view text);

/**
 * Parse an XML document from a file.
 * @throws ConfigError when the file cannot be read or parsed.
 */
XmlNode parseXmlFile(const std::string &path);

} // namespace isa
} // namespace emstress

#endif // EMSTRESS_ISA_XML_H
