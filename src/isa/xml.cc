/**
 * @file
 * Minimal XML parser implementation (recursive descent).
 */

#include "isa/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace emstress {
namespace isa {

bool
XmlNode::hasAttr(const std::string &key) const
{
    return attrs.find(key) != attrs.end();
}

const std::string &
XmlNode::attr(const std::string &key) const
{
    const auto it = attrs.find(key);
    requireConfig(it != attrs.end(),
                  "<" + name + ">: missing attribute '" + key + "'");
    return it->second;
}

std::string
XmlNode::attrOr(const std::string &key, const std::string &fallback) const
{
    const auto it = attrs.find(key);
    return it == attrs.end() ? fallback : it->second;
}

double
XmlNode::attrNumber(const std::string &key) const
{
    const std::string &v = attr(key);
    try {
        std::size_t pos = 0;
        const double out = std::stod(v, &pos);
        requireConfig(pos == v.size(), "trailing junk");
        return out;
    } catch (const std::exception &) {
        throw ConfigError("<" + name + ">: attribute '" + key
                          + "' is not a number: '" + v + "'");
    }
}

std::vector<const XmlNode *>
XmlNode::childrenNamed(const std::string &tag) const
{
    std::vector<const XmlNode *> out;
    for (const auto &c : children)
        if (c.name == tag)
            out.push_back(&c);
    return out;
}

const XmlNode &
XmlNode::child(const std::string &tag) const
{
    const auto matches = childrenNamed(tag);
    requireConfig(matches.size() == 1,
                  "<" + name + ">: expected exactly one <" + tag
                      + "> child, found "
                      + std::to_string(matches.size()));
    return *matches.front();
}

namespace {

/** Character cursor with line tracking for error messages. */
class Cursor
{
  public:
    explicit Cursor(std::string_view text) : text_(text) {}

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        return atEnd() ? '\0' : text_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        if (c == '\n')
            ++line_;
        return c;
    }

    bool
    consume(std::string_view token)
    {
        if (text_.substr(pos_).substr(0, token.size()) != token)
            return false;
        for (std::size_t i = 0; i < token.size(); ++i)
            next();
        return true;
    }

    void
    skipWhitespace()
    {
        while (!atEnd()
               && std::isspace(static_cast<unsigned char>(peek()))) {
            next();
        }
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw ConfigError("XML parse error at line "
                          + std::to_string(line_) + ": " + message);
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

bool
isNameChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_'
        || c == '-' || c == ':' || c == '.';
}

std::string
parseName(Cursor &cur)
{
    std::string out;
    while (!cur.atEnd() && isNameChar(cur.peek()))
        out += cur.next();
    if (out.empty())
        cur.fail("expected a name");
    return out;
}

std::string
decodeEntities(Cursor &cur, const std::string &raw)
{
    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] != '&') {
            out += raw[i];
            continue;
        }
        const auto semi = raw.find(';', i);
        if (semi == std::string::npos)
            cur.fail("unterminated character entity");
        const std::string ent = raw.substr(i + 1, semi - i - 1);
        if (ent == "amp")
            out += '&';
        else if (ent == "lt")
            out += '<';
        else if (ent == "gt")
            out += '>';
        else if (ent == "quot")
            out += '"';
        else if (ent == "apos")
            out += '\'';
        else
            cur.fail("unknown entity &" + ent + ";");
        i = semi;
    }
    return out;
}

void skipMisc(Cursor &cur);

XmlNode
parseElement(Cursor &cur)
{
    if (!cur.consume("<"))
        cur.fail("expected '<'");
    XmlNode node;
    node.name = parseName(cur);

    // Attributes.
    for (;;) {
        cur.skipWhitespace();
        if (cur.consume("/>"))
            return node;
        if (cur.consume(">"))
            break;
        const std::string key = parseName(cur);
        cur.skipWhitespace();
        if (!cur.consume("="))
            cur.fail("expected '=' after attribute " + key);
        cur.skipWhitespace();
        const char quote = cur.next();
        if (quote != '"' && quote != '\'')
            cur.fail("expected quoted attribute value");
        std::string raw;
        while (!cur.atEnd() && cur.peek() != quote)
            raw += cur.next();
        if (!cur.consume(std::string_view(&quote, 1)))
            cur.fail("unterminated attribute value");
        if (node.attrs.count(key))
            cur.fail("duplicate attribute " + key);
        node.attrs[key] = decodeEntities(cur, raw);
    }

    // Content.
    for (;;) {
        if (cur.atEnd())
            cur.fail("unexpected end of input inside <" + node.name
                     + ">");
        if (cur.consume("<!--")) {
            while (!cur.atEnd() && !cur.consume("-->"))
                cur.next();
            continue;
        }
        if (cur.consume("</")) {
            const std::string close = parseName(cur);
            if (close != node.name)
                cur.fail("mismatched closing tag </" + close
                         + "> for <" + node.name + ">");
            cur.skipWhitespace();
            if (!cur.consume(">"))
                cur.fail("expected '>' in closing tag");
            return node;
        }
        if (cur.peek() == '<') {
            node.children.push_back(parseElement(cur));
            continue;
        }
        std::string raw;
        while (!cur.atEnd() && cur.peek() != '<')
            raw += cur.next();
        node.text += decodeEntities(cur, raw);
    }
}

/** Skip prolog, comments and whitespace between top-level items. */
void
skipMisc(Cursor &cur)
{
    for (;;) {
        cur.skipWhitespace();
        if (cur.consume("<?")) {
            while (!cur.atEnd() && !cur.consume("?>"))
                cur.next();
            continue;
        }
        if (cur.consume("<!--")) {
            while (!cur.atEnd() && !cur.consume("-->"))
                cur.next();
            continue;
        }
        return;
    }
}

} // namespace

XmlNode
parseXml(std::string_view text)
{
    Cursor cur(text);
    skipMisc(cur);
    if (cur.atEnd())
        cur.fail("no root element");
    XmlNode root = parseElement(cur);
    skipMisc(cur);
    if (!cur.atEnd())
        cur.fail("content after root element");
    return root;
}

XmlNode
parseXmlFile(const std::string &path)
{
    std::ifstream f(path);
    requireConfig(f.good(), "cannot open XML file: " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseXml(buf.str());
}

} // namespace isa
} // namespace emstress
