/**
 * @file
 * Kernel implementation.
 */

#include "isa/kernel.h"

#include <sstream>
#include <utility>

#include "util/error.h"

namespace emstress {
namespace isa {

Kernel
Kernel::random(const InstructionPool &pool, std::size_t length,
               Rng &rng)
{
    std::vector<Instruction> code;
    code.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        code.push_back(pool.randomInstruction(rng));
    return Kernel(std::move(code));
}

std::array<std::size_t, kNumInstrClasses>
Kernel::classHistogram(const InstructionPool &pool) const
{
    std::array<std::size_t, kNumInstrClasses> hist{};
    for (const auto &instr : code_)
        ++hist[static_cast<std::size_t>(pool.def(instr.def_index).cls)];
    return hist;
}

double
Kernel::classFraction(const InstructionPool &pool, InstrClass cls) const
{
    if (code_.empty())
        return 0.0;
    const auto hist = classHistogram(pool);
    return static_cast<double>(hist[static_cast<std::size_t>(cls)])
        / static_cast<double>(code_.size());
}

void
Kernel::validate(const InstructionPool &pool) const
{
    for (const auto &instr : code_)
        pool.validate(instr);
}

std::string
Kernel::toAssembly(const InstructionPool &pool) const
{
    std::ostringstream os;
    os << ".loop:\n";
    for (const auto &instr : code_)
        os << "    " << pool.toAssembly(instr) << "\n";
    os << "    B .loop\n";
    return os.str();
}

std::string
Kernel::serialize(const InstructionPool &pool) const
{
    std::ostringstream os;
    for (const auto &instr : code_) {
        os << pool.def(instr.def_index).mnemonic << ' ' << instr.dest
           << ' ' << instr.src[0] << ' ' << instr.src[1] << ' '
           << instr.mem_slot << '\n';
    }
    return os.str();
}

Kernel
Kernel::deserialize(const InstructionPool &pool,
                    const std::string &text)
{
    std::vector<Instruction> code;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string mnemonic;
        Instruction instr;
        if (!(ls >> mnemonic >> instr.dest >> instr.src[0]
              >> instr.src[1] >> instr.mem_slot)) {
            throw ConfigError("malformed kernel line: " + line);
        }
        instr.def_index = pool.defIndex(mnemonic);
        code.push_back(instr);
    }
    Kernel kernel(std::move(code));
    kernel.validate(pool);
    return kernel;
}

bool
Kernel::operator==(const Kernel &other) const
{
    if (code_.size() != other.code_.size())
        return false;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        const auto &a = code_[i];
        const auto &b = other.code_[i];
        if (a.def_index != b.def_index || a.dest != b.dest
            || a.src != b.src || a.mem_slot != b.mem_slot) {
            return false;
        }
    }
    return true;
}

std::uint64_t
Kernel::hash() const
{
    // FNV-1a over every structural field. The constants are the
    // standard 64-bit FNV offset basis and prime.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(code_.size());
    for (const auto &instr : code_) {
        mix(instr.def_index);
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(instr.dest)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(instr.src[0])));
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(instr.src[1])));
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(instr.mem_slot)));
    }
    return h;
}

} // namespace isa
} // namespace emstress
