/**
 * @file
 * Instruction-set abstractions used by the stress-test generator.
 *
 * Following Section 3.3 of the paper, the GA draws from a diverse set
 * of instruction types — short/long-latency integer, floating point,
 * SIMD, loads/stores (ARM) or memory-operand integer ops (x86), and
 * dummy branches — because dI/dt viruses need both high-current and
 * low-current (stalling) instructions to modulate CPU current at the
 * PDN resonance.
 */

#ifndef EMSTRESS_ISA_INSTR_H
#define EMSTRESS_ISA_INSTR_H

#include <array>
#include <cstddef>
#include <string>

namespace emstress {
namespace isa {

/** Behavioural class of an instruction. */
enum class InstrClass
{
    IntShort,    ///< Single-cycle integer ALU (MOV, ADD...).
    IntLong,     ///< Multi-cycle integer (MUL, DIV).
    FpShort,     ///< Pipelined floating point (FADD, FMUL).
    FpLong,      ///< Long-latency floating point (FDIV, FSQRT).
    SimdShort,   ///< Pipelined SIMD arithmetic.
    SimdLong,    ///< Long-latency SIMD (square root etc.).
    Load,        ///< Explicit load, always an L1 hit (ARM).
    Store,       ///< Explicit store, always an L1 hit (ARM).
    Branch,      ///< Unconditional dummy branch to the next line.
    IntShortMem, ///< x86 short integer with a memory operand.
    IntLongMem,  ///< x86 long integer with a memory operand.
};

/** Number of distinct InstrClass values. */
inline constexpr std::size_t kNumInstrClasses = 11;

/** Register namespace an instruction's operands live in. */
enum class RegFile
{
    Int,
    Fp,
    Simd,
    None, ///< No register operands (dummy branch).
};

/** Short lowercase name of an instruction class (for tables/XML). */
std::string instrClassName(InstrClass cls);

/**
 * Parse an instruction class name as used in pool XML files.
 * @throws ConfigError for unknown names.
 */
InstrClass instrClassFromName(const std::string &name);

/** True for classes that engage the memory subsystem. */
bool isMemoryClass(InstrClass cls);

/** True for classes whose x86 form carries a memory operand. */
bool isX86MemOperandClass(InstrClass cls);

/**
 * Static description of one selectable instruction in a pool.
 *
 * `energy` is the *effective* switching energy per execution in
 * joules: it folds in fetch/decode/issue overhead so that the
 * per-cycle current reconstructed by the core model matches
 * realistic per-core power at full utilization. It is the knob
 * that makes an instruction "high current" or "low current".
 */
struct InstrDef
{
    std::string mnemonic;  ///< Display name, e.g. "ADD" or "FSQRT".
    InstrClass cls;        ///< Behavioural class.
    unsigned latency = 1;  ///< Result latency in cycles (>= 1).
    unsigned sources = 2;  ///< Number of register sources (0-2).
    bool has_dest = true;  ///< Writes a destination register.
    RegFile reg_file = RegFile::Int; ///< Operand namespace.
    double energy = 0.0;   ///< Effective switching energy [J].
};

/**
 * One concrete instruction instance: a pool definition plus chosen
 * operands. This is the unit the GA mutates (Section 3.1: a mutation
 * converts an instruction or an instruction-operand into another).
 */
struct Instruction
{
    std::size_t def_index = 0;  ///< Index into the pool's definitions.
    int dest = -1;              ///< Destination register or -1.
    std::array<int, 2> src{{-1, -1}}; ///< Source registers (unused: -1).
    int mem_slot = -1;          ///< Memory address slot or -1.
};

} // namespace isa
} // namespace emstress

#endif // EMSTRESS_ISA_INSTR_H
