/**
 * @file
 * Oscilloscope implementation.
 */

#include "instruments/oscilloscope.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace emstress {
namespace instruments {

OscilloscopeParams
ocDsoParams()
{
    OscilloscopeParams p;
    p.sample_rate_hz = giga(1.6); // paper: up to 1.6 GHz bandwidth OC-DSO
    p.bandwidth_hz = mega(700.0);
    p.bits = 10;
    p.full_scale_v = 1.6;
    p.record_length = 16384;
    p.noise_v_rms = 0.4e-3;
    return p;
}

OscilloscopeParams
kelvinScopeParams()
{
    OscilloscopeParams p;
    p.sample_rate_hz = giga(2.0);
    p.bandwidth_hz = mega(500.0);  // differential probe limits bandwidth
    p.bits = 8;
    p.full_scale_v = 2.0;
    p.record_length = 16384;
    p.noise_v_rms = 1.0e-3;  // probe + pad path is noisier
    return p;
}

Oscilloscope::Oscilloscope(const OscilloscopeParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    requireConfig(params.sample_rate_hz > 0.0,
                  "scope sample rate must be positive");
    requireConfig(params.bandwidth_hz > 0.0,
                  "scope bandwidth must be positive");
    requireConfig(params.bits >= 4 && params.bits <= 16,
                  "scope resolution outside 4-16 bits");
    requireConfig(params.record_length >= 16,
                  "scope record length too short");
}

Trace
Oscilloscope::capture(const Trace &v_in)
{
    return capture(v_in, rng_);
}

Trace
Oscilloscope::capture(const Trace &v_in, Rng &noise) const
{
    requireConfig(v_in.size() >= 2, "capture needs an input waveform");

    // Single-pole low-pass models the analog front end.
    const double rc = 1.0 / (kTwoPi * params_.bandwidth_hz);
    const double alpha = v_in.dt() / (rc + v_in.dt());
    Trace filtered(v_in.dt());
    filtered.reserve(v_in.size());
    double y = v_in[0];
    for (std::size_t k = 0; k < v_in.size(); ++k) {
        y += alpha * (v_in[k] - y);
        filtered.push(y);
    }

    // Resample to the ADC rate.
    Trace sampled =
        filtered.resampleZeroOrderHold(1.0 / params_.sample_rate_hz);

    // Noise + quantization, truncated to the record length.
    const double lsb = params_.full_scale_v
        / static_cast<double>(1u << params_.bits);
    const std::size_t n =
        std::min(sampled.size(), params_.record_length);
    requireSim(n >= 2, "capture shorter than two ADC samples; feed a "
                       "longer waveform or reduce record length");
    Trace out(sampled.dt());
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double noisy =
            sampled[k] + noise.gaussian(0.0, params_.noise_v_rms);
        out.push(std::round(noisy / lsb) * lsb);
    }
    return out;
}

namespace {

/**
 * Capture length a streaming scope will record: the batch pipeline's
 * ZOH output truncated to the record length, with the batch path's
 * own precondition checks.
 */
std::size_t
captureLength(const OscilloscopeParams &params, std::size_t n_in,
              double dt_in)
{
    requireConfig(n_in >= 2, "capture needs an input waveform");
    const std::size_t n_out = Trace::outputLengthFor(
        dt_in * static_cast<double>(n_in),
        1.0 / params.sample_rate_hz);
    const std::size_t n = std::min(n_out, params.record_length);
    requireSim(n >= 2, "capture shorter than two ADC samples; feed a "
                       "longer waveform or reduce record length");
    return n;
}

} // namespace

ScopeCaptureSink::QuantizeStage::QuantizeStage(
    const OscilloscopeParams &params, std::size_t cap, double dt_out,
    Rng &noise)
    : capture_(dt_out), cap_(cap),
      lsb_(params.full_scale_v
           / static_cast<double>(1u << params.bits)),
      noise_v_rms_(params.noise_v_rms), noise_(noise),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    capture_.reserve(cap);
}

void
ScopeCaptureSink::QuantizeStage::push(double v)
{
    // Samples beyond the record length are dropped without drawing
    // noise, exactly like the batch truncation.
    if (capture_.size() >= cap_)
        return;
    const double noisy = v + noise_.gaussian(0.0, noise_v_rms_);
    const double q = std::round(noisy / lsb_) * lsb_;
    capture_.push(q);
    min_ = std::min(min_, q);
    max_ = std::max(max_, q);
}

ScopeCaptureSink::ScopeCaptureSink(const OscilloscopeParams &params,
                                   std::size_t n_in, double dt_in,
                                   Rng &noise)
    : quant_(params, captureLength(params, n_in, dt_in),
             1.0 / params.sample_rate_hz, noise),
      zoh_(quant_, n_in, dt_in, 1.0 / params.sample_rate_hz),
      alpha_(dt_in
             / (1.0 / (kTwoPi * params.bandwidth_hz) + dt_in))
{
}

void
ScopeCaptureSink::push(double v)
{
    // Single-pole low-pass, seeded at the first sample like the batch
    // filter (whose first update is then an exact no-op).
    if (seen_ == 0)
        y_ = v;
    y_ += alpha_ * (v - y_);
    zoh_.push(y_);
    ++seen_;
}

void
ScopeCaptureSink::finish()
{
    zoh_.finish();
}

double
ScopeCaptureSink::minimum() const
{
    requireSim(!quant_.capture_.empty(), "scope capture is empty");
    return quant_.min_;
}

double
ScopeCaptureSink::maximum() const
{
    requireSim(!quant_.capture_.empty(), "scope capture is empty");
    return quant_.max_;
}

double
Oscilloscope::maxDroop(const Trace &capture, double v_nominal)
{
    return v_nominal - stats::minimum(capture.samples());
}

double
Oscilloscope::peakToPeak(const Trace &capture)
{
    return stats::peakToPeak(capture.samples());
}

dsp::Spectrum
Oscilloscope::fftView(const Trace &capture)
{
    return dsp::computeSpectrum(capture, dsp::WindowKind::Hann);
}

} // namespace instruments
} // namespace emstress
