/**
 * @file
 * Oscilloscope instrument models: the Juno on-chip power-supply
 * monitor configured as a digital storage oscilloscope (OC-DSO,
 * 1.6 GS/s sampling of the Cortex-A72 rails) and the benchtop scope
 * attached to the AMD board's on-package Kelvin pads through a
 * differential probe. Both apply front-end bandwidth limiting,
 * additive noise and quantization, and expose the droop/peak-to-peak
 * metrics the paper's voltage-driven GA and validation use.
 */

#ifndef EMSTRESS_INSTRUMENTS_OSCILLOSCOPE_H
#define EMSTRESS_INSTRUMENTS_OSCILLOSCOPE_H

#include <cstddef>

#include "dsp/spectrum.h"
#include "util/rng.h"
#include "util/sample_sink.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace instruments {

/** Oscilloscope front-end configuration. */
struct OscilloscopeParams
{
    double sample_rate_hz = giga(1.6); ///< ADC sample rate.
    double bandwidth_hz = mega(700.0);   ///< Analog -3 dB bandwidth.
    unsigned bits = 10;            ///< ADC resolution.
    double full_scale_v = 1.6;     ///< Quantizer full-scale range.
    std::size_t record_length = 16384; ///< Samples per capture.
    double noise_v_rms = 0.4e-3;   ///< Front-end noise.
};

/** Parameters matching the Juno OC-DSO block. */
OscilloscopeParams ocDsoParams();

/** Parameters matching a benchtop scope on Kelvin pads. */
OscilloscopeParams kelvinScopeParams();

/**
 * Streaming counterpart of Oscilloscope::capture: consumes the die
 * voltage one sample at a time, applies the same front-end low-pass,
 * ADC-rate zero-order hold, noise and quantization, and stores only
 * the bounded record (<= record_length samples) plus online min/max
 * accumulators. Memory is O(record_length) regardless of run length,
 * and the stored capture is bit-identical to the batch one for the
 * same input stream and noise Rng.
 *
 * Not copyable or movable (internal sink wiring); construct in place
 * (e.g. std::optional::emplace). The noise Rng must outlive the sink.
 */
class ScopeCaptureSink final : public SampleSink
{
  public:
    /**
     * @param params Scope settings (validated by the owning scope).
     * @param n_in   Samples the stream will push.
     * @param dt_in  Input sample interval [s].
     * @param noise  Front-end noise stream (held by reference).
     */
    ScopeCaptureSink(const OscilloscopeParams &params, std::size_t n_in,
                     double dt_in, Rng &noise);

    ScopeCaptureSink(const ScopeCaptureSink &) = delete;
    ScopeCaptureSink &operator=(const ScopeCaptureSink &) = delete;

    void push(double v) override;
    void finish() override;

    /** The quantized capture recorded so far (complete after finish). */
    const Trace &capture() const { return quant_.capture_; }

    /** Move the capture out. */
    Trace takeCapture() { return std::move(quant_.capture_); }

    /** Smallest captured sample. @pre at least one captured sample. */
    double minimum() const;

    /** Largest captured sample. @pre at least one captured sample. */
    double maximum() const;

    /** Peak-to-peak amplitude of the capture [V]. */
    double peakToPeak() const { return maximum() - minimum(); }

    /** Maximum droop below a nominal level over the capture [V]. */
    double maxDroop(double v_nominal) const
    {
        return v_nominal - minimum();
    }

  private:
    /** ADC stage: noise + quantization into the bounded record. */
    class QuantizeStage final : public SampleSink
    {
      public:
        QuantizeStage(const OscilloscopeParams &params, std::size_t cap,
                      double dt_out, Rng &noise);
        void push(double v) override;

      private:
        friend class ScopeCaptureSink;
        Trace capture_;
        std::size_t cap_;
        double lsb_;
        double noise_v_rms_;
        Rng &noise_;
        double min_;
        double max_;
    };

    QuantizeStage quant_;
    ZohResampleSink zoh_;
    double alpha_;
    double y_ = 0.0;
    std::size_t seen_ = 0;
};

/**
 * Sampling oscilloscope.
 */
class Oscilloscope
{
  public:
    /** Construct with settings and a seeded noise stream. */
    Oscilloscope(const OscilloscopeParams &params, Rng rng);

    /** Settings. */
    const OscilloscopeParams &params() const { return params_; }

    /**
     * The instrument's internal front-end noise stream. Streaming
     * capture sinks draw from it to replicate the non-const batch
     * capture, advancing the state identically.
     */
    Rng &noiseStream() { return rng_; }

    /**
     * Capture a voltage waveform: band-limit, resample to the ADC
     * rate, add front-end noise, quantize, and truncate to the
     * record length.
     */
    Trace capture(const Trace &v_in);

    /**
     * Like capture(), but drawing front-end noise from a
     * caller-provided stream instead of the instrument's internal
     * one. Const and reentrant: concurrent captures stay
     * reproducible when each caller seeds its own stream.
     */
    Trace capture(const Trace &v_in, Rng &noise) const;

    /**
     * Maximum droop below a nominal level over a capture [V]
     * (paper's voltage-droop GA metric).
     */
    static double maxDroop(const Trace &capture, double v_nominal);

    /** Peak-to-peak amplitude of a capture [V]. */
    static double peakToPeak(const Trace &capture);

    /** FFT view of a capture, as the DS-5 tooling provides (Fig. 9). */
    static dsp::Spectrum fftView(const Trace &capture);

  private:
    OscilloscopeParams params_;
    Rng rng_;
};

} // namespace instruments
} // namespace emstress

#endif // EMSTRESS_INSTRUMENTS_OSCILLOSCOPE_H
