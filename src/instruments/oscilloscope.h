/**
 * @file
 * Oscilloscope instrument models: the Juno on-chip power-supply
 * monitor configured as a digital storage oscilloscope (OC-DSO,
 * 1.6 GS/s sampling of the Cortex-A72 rails) and the benchtop scope
 * attached to the AMD board's on-package Kelvin pads through a
 * differential probe. Both apply front-end bandwidth limiting,
 * additive noise and quantization, and expose the droop/peak-to-peak
 * metrics the paper's voltage-driven GA and validation use.
 */

#ifndef EMSTRESS_INSTRUMENTS_OSCILLOSCOPE_H
#define EMSTRESS_INSTRUMENTS_OSCILLOSCOPE_H

#include <cstddef>

#include "dsp/spectrum.h"
#include "util/rng.h"
#include "util/trace.h"

namespace emstress {
namespace instruments {

/** Oscilloscope front-end configuration. */
struct OscilloscopeParams
{
    double sample_rate_hz = 1.6e9; ///< ADC sample rate.
    double bandwidth_hz = 700e6;   ///< Analog -3 dB bandwidth.
    unsigned bits = 10;            ///< ADC resolution.
    double full_scale_v = 1.6;     ///< Quantizer full-scale range.
    std::size_t record_length = 16384; ///< Samples per capture.
    double noise_v_rms = 0.4e-3;   ///< Front-end noise.
};

/** Parameters matching the Juno OC-DSO block. */
OscilloscopeParams ocDsoParams();

/** Parameters matching a benchtop scope on Kelvin pads. */
OscilloscopeParams kelvinScopeParams();

/**
 * Sampling oscilloscope.
 */
class Oscilloscope
{
  public:
    /** Construct with settings and a seeded noise stream. */
    Oscilloscope(const OscilloscopeParams &params, Rng rng);

    /** Settings. */
    const OscilloscopeParams &params() const { return params_; }

    /**
     * Capture a voltage waveform: band-limit, resample to the ADC
     * rate, add front-end noise, quantize, and truncate to the
     * record length.
     */
    Trace capture(const Trace &v_in);

    /**
     * Like capture(), but drawing front-end noise from a
     * caller-provided stream instead of the instrument's internal
     * one. Const and reentrant: concurrent captures stay
     * reproducible when each caller seeds its own stream.
     */
    Trace capture(const Trace &v_in, Rng &noise) const;

    /**
     * Maximum droop below a nominal level over a capture [V]
     * (paper's voltage-droop GA metric).
     */
    static double maxDroop(const Trace &capture, double v_nominal);

    /** Peak-to-peak amplitude of a capture [V]. */
    static double peakToPeak(const Trace &capture);

    /** FFT view of a capture, as the DS-5 tooling provides (Fig. 9). */
    static dsp::Spectrum fftView(const Trace &capture);

  private:
    OscilloscopeParams params_;
    Rng rng_;
};

} // namespace instruments
} // namespace emstress

#endif // EMSTRESS_INSTRUMENTS_OSCILLOSCOPE_H
