/**
 * @file
 * Spectrum analyzer implementation.
 */

#include "instruments/spectrum_analyzer.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/metrics.h"
#include "util/units.h"

namespace emstress {
namespace instruments {

SpectrumAnalyzer::SpectrumAnalyzer(const SpectrumAnalyzerParams &params,
                                   Rng rng)
    : params_(params), rng_(rng)
{
    requireConfig(params.f_stop_hz > params.f_start_hz,
                  "analyzer stop frequency must exceed start");
    requireConfig(params.ref_impedance > 0.0,
                  "reference impedance must be positive");
}

SaSweep
SpectrumAnalyzer::sweep(const Trace &v_received)
{
    return noisySweep(dsp::computeSpectrum(v_received, params_.window),
                      rng_);
}

SaSweep
SpectrumAnalyzer::sweep(const Trace &v_received, Rng &noise) const
{
    return noisySweep(dsp::computeSpectrum(v_received, params_.window),
                      noise);
}

SaSweep
SpectrumAnalyzer::noisySweep(const dsp::Spectrum &spec,
                             Rng &noise) const
{
    metrics::Registry::instance().add("instruments.sa.sweeps");
    const double floor_w = dbmToWatts(params_.noise_floor_dbm);

    SaSweep out;
    out.freqs_hz.reserve(spec.size());
    out.power_dbm.reserve(spec.size());
    for (std::size_t k = 0; k < spec.size(); ++k) {
        const double f = spec.freqs_hz[k];
        if (f < params_.f_start_hz || f > params_.f_stop_hz)
            continue;
        // Signal power into the reference impedance.
        double p_w = voltsRmsToWatts(spec.amps_vrms[k],
                                     params_.ref_impedance);
        // Per-sweep gain ripple (log-normal in power).
        const double gain_db =
            noise.gaussian(0.0, params_.gain_error_db);
        p_w *= dbToPowerRatio(gain_db);
        // Additive noise floor with Rayleigh-like variation.
        const double n1 = noise.gaussian(0.0, 1.0);
        const double n2 = noise.gaussian(0.0, 1.0);
        p_w += 0.5 * floor_w * (n1 * n1 + n2 * n2);
        out.freqs_hz.push_back(f);
        out.power_dbm.push_back(wattsToDbm(std::max(p_w, 1e-30)));
    }
    requireSim(!out.freqs_hz.empty(),
               "sweep produced no bins inside the display span; "
               "check sample rate versus f_start/f_stop");
    return out;
}

SaBandDetector::SaBandDetector(const SpectrumAnalyzerParams &params,
                               std::size_t n_in, double sample_rate_hz,
                               double f_lo, double f_hi)
    : params_(params), f_lo_(f_lo), f_hi_(f_hi),
      owned_bank_(std::in_place, n_in, sample_rate_hz, f_lo, f_hi,
                  params.window),
      bank_(*owned_bank_), goertzel_(bank_)
{
    requireConfig(params.f_stop_hz > params.f_start_hz,
                  "analyzer stop frequency must exceed start");
    requireConfig(params.ref_impedance > 0.0,
                  "reference impedance must be positive");
}

SaBandDetector::SaBandDetector(const SpectrumAnalyzerParams &params,
                               const dsp::GoertzelBank &bank,
                               double f_lo, double f_hi)
    : params_(params), f_lo_(f_lo), f_hi_(f_hi), bank_(bank),
      goertzel_(bank_)
{
    requireConfig(params.f_stop_hz > params.f_start_hz,
                  "analyzer stop frequency must exceed start");
    requireConfig(params.ref_impedance > 0.0,
                  "reference impedance must be positive");
}

SaMarker
SaBandDetector::sweepMax(const std::vector<double> &amps,
                         Rng &noise) const
{
    metrics::Registry::instance().add("instruments.sa.band_evals");
    const double floor_w = dbmToWatts(params_.noise_floor_dbm);
    const double df = bank_.binWidthHz();
    const std::size_t half = bank_.nfft() / 2;

    // Replay noisySweep's walk over every displayed bin (each draws
    // its three noise values whether or not it lies in the band) and
    // maxAmplitude's strict-greater marker search over [f_lo, f_hi].
    SaMarker best;
    std::size_t display_bins = 0;
    std::size_t bi = 0;
    for (std::size_t k = 0; k < half; ++k) {
        const double f = df * static_cast<double>(k);
        if (f < params_.f_start_hz || f > params_.f_stop_hz)
            continue;
        ++display_bins;
        const double gain_db =
            noise.gaussian(0.0, params_.gain_error_db);
        const double n1 = noise.gaussian(0.0, 1.0);
        const double n2 = noise.gaussian(0.0, 1.0);
        while (bi < bank_.size() && bank_.binIndex(bi) < k)
            ++bi;
        if (f < f_lo_ || f > f_hi_)
            continue;
        double p_w = voltsRmsToWatts(amps[bi], params_.ref_impedance);
        p_w *= dbToPowerRatio(gain_db);
        p_w += 0.5 * floor_w * (n1 * n1 + n2 * n2);
        const double dbm = wattsToDbm(std::max(p_w, 1e-30));
        if (dbm > best.power_dbm) {
            best.power_dbm = dbm;
            best.freq_hz = f;
        }
    }
    requireSim(display_bins > 0,
               "sweep produced no bins inside the display span; "
               "check sample rate versus f_start/f_stop");
    return best;
}

SaMarker
SaBandDetector::maxAmplitude(Rng &noise) const
{
    return sweepMax(goertzel_.amplitudesVrms(), noise);
}

SaMarker
SaBandDetector::averagedMaxAmplitude(std::size_t n_samples,
                                     Rng &noise) const
{
    requireConfig(n_samples >= 1, "need at least one sample");
    const std::vector<double> amps = goertzel_.amplitudesVrms();
    double sum_sq_w = 0.0;
    std::vector<double> freqs;
    freqs.reserve(n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) {
        const SaMarker m = sweepMax(amps, noise);
        const double p_w = dbmToWatts(m.power_dbm);
        sum_sq_w += p_w * p_w;
        freqs.push_back(m.freq_hz);
    }
    const double rms_w =
        std::sqrt(sum_sq_w / static_cast<double>(n_samples));
    std::sort(freqs.begin(), freqs.end());
    SaMarker out;
    out.power_dbm = wattsToDbm(std::max(rms_w, 1e-30));
    out.freq_hz = freqs[freqs.size() / 2];
    return out;
}

SaMarker
SpectrumAnalyzer::maxAmplitude(const SaSweep &sweep, double f_lo,
                               double f_hi)
{
    SaMarker best;
    for (std::size_t k = 0; k < sweep.size(); ++k) {
        const double f = sweep.freqs_hz[k];
        if (f < f_lo || f > f_hi)
            continue;
        if (sweep.power_dbm[k] > best.power_dbm) {
            best.power_dbm = sweep.power_dbm[k];
            best.freq_hz = f;
        }
    }
    return best;
}

SaMarker
SpectrumAnalyzer::averagedMaxAmplitude(const Trace &v_received,
                                       double f_lo, double f_hi,
                                       std::size_t n_samples)
{
    return averagedMaxAmplitude(v_received, f_lo, f_hi, n_samples,
                                rng_);
}

SaMarker
SpectrumAnalyzer::averagedMaxAmplitude(const Trace &v_received,
                                       double f_lo, double f_hi,
                                       std::size_t n_samples,
                                       Rng &noise) const
{
    requireConfig(n_samples >= 1, "need at least one sample");
    // The underlying signal is unchanged between the N sweeps; only
    // measurement noise varies, so compute the spectrum once.
    const auto spec = dsp::computeSpectrum(v_received, params_.window);
    double sum_sq_w = 0.0;
    std::vector<double> freqs;
    freqs.reserve(n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) {
        const SaSweep s = noisySweep(spec, noise);
        const SaMarker m = maxAmplitude(s, f_lo, f_hi);
        const double p_w = dbmToWatts(m.power_dbm);
        sum_sq_w += p_w * p_w;
        freqs.push_back(m.freq_hz);
    }
    // RMS in linear power, reported in dBm.
    const double rms_w =
        std::sqrt(sum_sq_w / static_cast<double>(n_samples));
    // Modal peak frequency: the median is robust to occasional
    // noise-floor wins on weak signals.
    std::sort(freqs.begin(), freqs.end());
    SaMarker out;
    out.power_dbm = wattsToDbm(std::max(rms_w, 1e-30));
    out.freq_hz = freqs[freqs.size() / 2];
    return out;
}

} // namespace instruments
} // namespace emstress
