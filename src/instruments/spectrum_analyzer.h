/**
 * @file
 * Spectrum-analyzer instrument model (Agilent E4402B / N9332C in the
 * paper). Converts a received antenna voltage into a calibrated dBm
 * power spectrum with a thermal noise floor and per-sweep measurement
 * noise, and provides the paper's GA fitness statistic: the RMS of N
 * repeated max-amplitude measurements over a band (Section 3.1 step
 * (b): "the metric used for maximum EM amplitude is the mean root
 * square of 30 samples").
 */

#ifndef EMSTRESS_INSTRUMENTS_SPECTRUM_ANALYZER_H
#define EMSTRESS_INSTRUMENTS_SPECTRUM_ANALYZER_H

#include <cstddef>
#include <optional>
#include <vector>

#include "dsp/goertzel.h"
#include "dsp/spectrum.h"
#include "util/rng.h"
#include "util/sample_sink.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace instruments {

/** Configuration of the spectrum analyzer. */
struct SpectrumAnalyzerParams
{
    double f_start_hz = mega(10.0);       ///< Display start frequency.
    double f_stop_hz = mega(500.0);       ///< Display stop frequency.
    double ref_impedance = 50.0;    ///< Input impedance [ohm].
    double noise_floor_dbm = -97.0; ///< Displayed average noise level.
    double gain_error_db = 0.25;    ///< 1-sigma per-sweep gain ripple.
    dsp::WindowKind window = dsp::WindowKind::Hann; ///< RBW filter.
};

/** One displayed sweep: frequency bins and power levels. */
struct SaSweep
{
    std::vector<double> freqs_hz;
    std::vector<double> power_dbm;

    /** Number of display bins. */
    std::size_t size() const { return freqs_hz.size(); }
};

/** A marker measurement: peak frequency and level. */
struct SaMarker
{
    double freq_hz = 0.0;
    double power_dbm = -200.0;
};

/**
 * Streaming band-max detector: the SampleSink counterpart of feeding
 * a received-voltage trace through sweep() + maxAmplitude(). A
 * Goertzel bank watches only the FFT-grid bins inside [f_lo, f_hi],
 * so memory is O(band bins), not O(capture). Measurement noise
 * replays the batch path's draw order exactly — three gaussians per
 * displayed bin, ascending frequency — so a given Rng stream yields
 * the same markers as the batch instrument (amplitudes agree to the
 * Goertzel recurrence's ~1e-12 relative rounding).
 *
 * Not copyable or movable: the Goertzel accumulator references the
 * bank member. Construct in place (e.g. std::optional::emplace).
 */
class SaBandDetector final : public SampleSink
{
  public:
    /**
     * @param params         Analyzer settings (display span, noise).
     * @param n_in           Samples the stream will push (the batch
     *                       capture length).
     * @param sample_rate_hz Input sample rate.
     * @param f_lo, f_hi     Measurement band for the marker search.
     */
    SaBandDetector(const SpectrumAnalyzerParams &params,
                   std::size_t n_in, double sample_rate_hz,
                   double f_lo, double f_hi);

    /**
     * Share a prebuilt bank instead of constructing one: building a
     * bank costs a full pass of the recurrence, so callers that
     * measure the same capture geometry repeatedly (e.g. GA fitness
     * evaluation) should build the bank once and reuse it. The bank
     * must have been constructed with this same (n_in, sample rate,
     * f_lo, f_hi) tuple and must outlive the detector.
     */
    SaBandDetector(const SpectrumAnalyzerParams &params,
                   const dsp::GoertzelBank &bank, double f_lo,
                   double f_hi);

    SaBandDetector(const SaBandDetector &) = delete;
    SaBandDetector &operator=(const SaBandDetector &) = delete;

    void push(double v) override { goertzel_.push(v); }

    /**
     * One noisy sweep's band maximum, as maxAmplitude(sweep(...)).
     * @pre the full capture has been pushed.
     */
    SaMarker maxAmplitude(Rng &noise) const;

    /**
     * The paper's RMS-of-N-sweeps statistic, matching the batch
     * SpectrumAnalyzer::averagedMaxAmplitude draw for draw.
     * @pre the full capture has been pushed.
     */
    SaMarker averagedMaxAmplitude(std::size_t n_samples,
                                  Rng &noise) const;

  private:
    /** Replay one display sweep over precomputed band amplitudes. */
    SaMarker sweepMax(const std::vector<double> &amps,
                      Rng &noise) const;

    SpectrumAnalyzerParams params_;
    double f_lo_;
    double f_hi_;
    std::optional<dsp::GoertzelBank> owned_bank_;
    const dsp::GoertzelBank &bank_; ///< owned_bank_ or the caller's.
    dsp::GoertzelAccumulator goertzel_;
};

/**
 * Spectrum analyzer. Holds its own RNG stream so that measurement
 * noise is reproducible per instrument instance.
 */
class SpectrumAnalyzer
{
  public:
    /** Construct with settings and a seeded noise stream. */
    SpectrumAnalyzer(const SpectrumAnalyzerParams &params, Rng rng);

    /** Settings. */
    const SpectrumAnalyzerParams &params() const { return params_; }

    /**
     * The instrument's internal measurement-noise stream. Streaming
     * detectors draw from it to replicate the non-const batch
     * methods, advancing the state identically.
     */
    Rng &noiseStream() { return rng_; }

    /**
     * Acquire one sweep from a received voltage trace. Bins outside
     * [f_start, f_stop] are discarded; every bin is clamped at the
     * noise floor and perturbed by gain error and floor noise.
     */
    SaSweep sweep(const Trace &v_received);

    /**
     * Like sweep(), but drawing measurement noise from a
     * caller-provided stream instead of the instrument's internal
     * one. Const and reentrant: concurrent measurements stay
     * reproducible when each caller seeds its own stream (e.g. from
     * the measured kernel's hash).
     */
    SaSweep sweep(const Trace &v_received, Rng &noise) const;

    /** Highest-level marker within a band of a sweep. */
    static SaMarker maxAmplitude(const SaSweep &sweep, double f_lo,
                                 double f_hi);

    /**
     * The paper's fitness statistic: perform n_samples sweeps of the
     * same signal (fresh measurement noise each), take the max
     * amplitude in [f_lo, f_hi] per sweep, and return the RMS of the
     * linear amplitudes converted back to dBm, along with the modal
     * peak frequency.
     */
    SaMarker averagedMaxAmplitude(const Trace &v_received, double f_lo,
                                  double f_hi, std::size_t n_samples);

    /**
     * Like averagedMaxAmplitude(), with caller-provided measurement
     * noise. Const and reentrant (see sweep() overload).
     */
    SaMarker averagedMaxAmplitude(const Trace &v_received, double f_lo,
                                  double f_hi, std::size_t n_samples,
                                  Rng &noise) const;

  private:
    /** Apply display-span filtering and measurement noise to a
     * precomputed spectrum. */
    SaSweep noisySweep(const dsp::Spectrum &spec, Rng &noise) const;

    SpectrumAnalyzerParams params_;
    Rng rng_;
};

} // namespace instruments
} // namespace emstress

#endif // EMSTRESS_INSTRUMENTS_SPECTRUM_ANALYZER_H
