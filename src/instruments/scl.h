/**
 * @file
 * Synthetic Current Load (SCL) model: the block integrated in the
 * Juno OC-DSO that loads the Cortex-A72 PDN with a square-wave
 * current excitation at programmable frequencies (paper Section 4 and
 * Fig. 8). Used to find the PDN resonance independently of software.
 */

#ifndef EMSTRESS_INSTRUMENTS_SCL_H
#define EMSTRESS_INSTRUMENTS_SCL_H

#include "circuit/transient.h"

namespace emstress {
namespace instruments {

/**
 * Programmable square-wave current injector.
 */
class SyntheticCurrentLoad
{
  public:
    /**
     * @param amplitude_a Square-wave high level [A] (low level 0).
     * @param duty        High-time fraction in (0, 1).
     */
    explicit SyntheticCurrentLoad(double amplitude_a,
                                  double duty = 0.5);

    /** Square-wave amplitude [A]. */
    double amplitude() const { return amplitude_; }

    /** Duty cycle. */
    double duty() const { return duty_; }

    /**
     * Waveform at a programmed frequency, pluggable into
     * PdnModel::simulate as the SCL source.
     */
    circuit::SourceWaveform waveform(double freq_hz) const;

  private:
    double amplitude_;
    double duty_;
};

} // namespace instruments
} // namespace emstress

#endif // EMSTRESS_INSTRUMENTS_SCL_H
