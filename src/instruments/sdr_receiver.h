/**
 * @file
 * Software-defined-radio receiver model. The paper notes that
 * "cheaper commercial software-defined radio receivers should also
 * work" in place of the bench spectrum analyzers (Section 4, citing
 * the Spectral Profiling work). This models an RTL-SDR-class
 * device: complex down-conversion to baseband, a limited instantaneous
 * bandwidth, coarse 8-bit IQ quantization and a worse noise figure —
 * and shows the EM methodology still functions through it.
 */

#ifndef EMSTRESS_INSTRUMENTS_SDR_RECEIVER_H
#define EMSTRESS_INSTRUMENTS_SDR_RECEIVER_H

#include <complex>
#include <cstddef>
#include <vector>

#include "instruments/spectrum_analyzer.h"
#include "util/rng.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace instruments {

/** SDR configuration (defaults: RTL-SDR-class dongle). */
struct SdrParams
{
    double center_hz = mega(100.0);     ///< Tuned center frequency.
    double sample_rate_hz = mega(2.4);///< Complex baseband rate =
                                  ///< instantaneous bandwidth.
    unsigned bits = 8;            ///< IQ quantizer resolution.
    double full_scale_v = 0.5;    ///< Quantizer full scale (at the
                                  ///< ADC, after the tuner gain).
    double gain_db = 40.0;        ///< LNA/tuner gain ahead of the
                                  ///< ADC; reported levels are
                                  ///< input-referred.
    double noise_figure_db = 8.0; ///< Front-end noise figure.
    double ref_impedance = 50.0;  ///< Input impedance.
};

/** A complex baseband capture. */
struct IqCapture
{
    std::vector<std::complex<double>> iq; ///< Baseband samples.
    double sample_rate_hz = 0.0;
    double center_hz = 0.0;
};

/**
 * SDR receiver: narrowband tuned capture of the antenna signal.
 * Because the instantaneous bandwidth is a few MHz, wideband searches
 * (e.g. the 50-200 MHz virus band) are performed by retuning across
 * the band — exactly how one would use a cheap dongle in the lab.
 */
class SdrReceiver
{
  public:
    /** Construct with settings and a seeded noise stream. */
    SdrReceiver(const SdrParams &params, Rng rng);

    /** Settings (center frequency is mutable via tune()). */
    const SdrParams &params() const { return params_; }

    /** Retune the center frequency. */
    void tune(double center_hz);

    /**
     * Capture the antenna voltage: mix to baseband, low-pass to the
     * instantaneous bandwidth, decimate to the IQ rate, add
     * front-end noise, quantize.
     */
    IqCapture capture(const Trace &v_antenna);

    /**
     * Power spectrum of a capture in absolute frequency [dBm into
     * ref_impedance], one-sided around the center.
     */
    SaSweep spectrum(const IqCapture &capture) const;

    /**
     * Scan a wide band by retuning in (bandwidth-sized) steps and
     * taking the max-amplitude marker of each window — the SDR
     * equivalent of SpectrumAnalyzer::averagedMaxAmplitude.
     */
    SaMarker scanMaxAmplitude(const Trace &v_antenna, double f_lo_hz,
                              double f_hi_hz);

  private:
    SdrParams params_;
    Rng rng_;
};

} // namespace instruments
} // namespace emstress

#endif // EMSTRESS_INSTRUMENTS_SDR_RECEIVER_H
