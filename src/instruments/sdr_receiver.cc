/**
 * @file
 * SDR receiver implementation.
 */

#include "instruments/sdr_receiver.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/window.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/units.h"

namespace emstress {
namespace instruments {

SdrReceiver::SdrReceiver(const SdrParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    requireConfig(params.sample_rate_hz > 0.0,
                  "SDR sample rate must be positive");
    requireConfig(params.center_hz > params.sample_rate_hz,
                  "SDR center frequency must exceed its bandwidth");
    requireConfig(params.bits >= 4 && params.bits <= 16,
                  "SDR resolution outside 4-16 bits");
}

void
SdrReceiver::tune(double center_hz)
{
    requireConfig(center_hz > params_.sample_rate_hz,
                  "SDR center frequency must exceed its bandwidth");
    params_.center_hz = center_hz;
}

IqCapture
SdrReceiver::capture(const Trace &v_antenna)
{
    metrics::Registry::instance().add("instruments.sdr.captures");
    requireConfig(v_antenna.size() >= 16,
                  "SDR capture needs an input waveform");
    const double fs_in = v_antenna.sampleRate();
    requireConfig(fs_in > 2.0 * params_.center_hz,
                  "antenna trace sample rate below Nyquist for the "
                  "tuned center frequency");

    // Mix to complex baseband.
    const double w0 = kTwoPi * params_.center_hz;
    std::vector<std::complex<double>> base(v_antenna.size());
    for (std::size_t k = 0; k < v_antenna.size(); ++k) {
        const double t = v_antenna.timeAt(k);
        base[k] = v_antenna[k]
            * std::exp(std::complex<double>(0.0, -w0 * t));
    }

    // Two-stage one-pole low-pass at half the IQ rate, then
    // decimate.
    const double fc = 0.5 * params_.sample_rate_hz;
    const double rc = 1.0 / (kTwoPi * fc);
    const double alpha = v_antenna.dt() / (rc + v_antenna.dt());
    std::complex<double> y1 = 0.0, y2 = 0.0;
    for (auto &x : base) {
        y1 += alpha * (x - y1);
        y2 += alpha * (y1 - y2);
        x = y2;
    }

    const auto decim = static_cast<std::size_t>(
        std::max(1.0, fs_in / params_.sample_rate_hz));
    // Front-end noise: kT*B*NF into the reference impedance.
    const double noise_power = kBoltzmann * kRoomTempKelvin
        * params_.sample_rate_hz
        * dbToPowerRatio(params_.noise_figure_db);
    const double noise_vrms = std::sqrt(
        noise_power * params_.ref_impedance);
    // Input-referred quantization step: the tuner gain ahead of the
    // ADC makes the effective LSB much finer than full_scale/2^bits.
    const double gain = std::pow(10.0, params_.gain_db / 20.0);
    const double lsb = params_.full_scale_v
        / static_cast<double>(1u << params_.bits) / gain;

    IqCapture out;
    out.sample_rate_hz = fs_in / static_cast<double>(decim);
    out.center_hz = params_.center_hz;
    out.iq.reserve(base.size() / decim + 1);
    for (std::size_t k = 0; k < base.size(); k += decim) {
        // The mixed signal carries half the original tone amplitude
        // in each sideband; scale by 2 to restore calibrated levels.
        std::complex<double> s = 2.0 * base[k];
        s += std::complex<double>(
            rng_.gaussian(0.0, noise_vrms),
            rng_.gaussian(0.0, noise_vrms));
        out.iq.emplace_back(std::round(s.real() / lsb) * lsb,
                            std::round(s.imag() / lsb) * lsb);
    }
    return out;
}

SaSweep
SdrReceiver::spectrum(const IqCapture &capture) const
{
    requireConfig(capture.iq.size() >= 8, "capture too short");
    const std::size_t n = capture.iq.size();
    const auto w = dsp::makeWindow(dsp::WindowKind::Hann, n);
    const double gain = dsp::coherentGain(dsp::WindowKind::Hann, n);

    // Remove DC (mixer/quantizer offset) and window.
    std::complex<double> mean = 0.0;
    for (const auto &x : capture.iq)
        mean += x;
    mean /= static_cast<double>(n);

    std::vector<std::complex<double>> data(dsp::nextPowerOfTwo(n));
    for (std::size_t k = 0; k < n; ++k)
        data[k] = (capture.iq[k] - mean) * w[k];
    dsp::fftInPlace(data, false);

    const std::size_t nfft = data.size();
    const double df = capture.sample_rate_hz
        / static_cast<double>(nfft);
    // Complex spectrum: bins [0, nfft/2) are positive offsets,
    // [nfft/2, nfft) negative. A real input tone at center+f shows
    // at +f with full amplitude (single-sided after mixing).
    const double scale =
        std::sqrt(0.5) / (static_cast<double>(n) * gain);

    SaSweep out;
    out.freqs_hz.reserve(nfft);
    out.power_dbm.reserve(nfft);
    for (std::size_t k = 0; k < nfft; ++k) {
        const double offset = k < nfft / 2
            ? df * static_cast<double>(k)
            : df * static_cast<double>(k) - capture.sample_rate_hz;
        const double vrms = std::abs(data[k]) * scale;
        const double p_w =
            voltsRmsToWatts(vrms, params_.ref_impedance);
        out.freqs_hz.push_back(capture.center_hz + offset);
        out.power_dbm.push_back(
            wattsToDbm(std::max(p_w, 1e-30)));
    }
    // Sort bins by absolute frequency for display.
    std::vector<std::size_t> order(out.freqs_hz.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&out](std::size_t a, std::size_t b) {
                  return out.freqs_hz[a] < out.freqs_hz[b];
              });
    SaSweep sorted;
    sorted.freqs_hz.reserve(order.size());
    sorted.power_dbm.reserve(order.size());
    for (std::size_t i : order) {
        sorted.freqs_hz.push_back(out.freqs_hz[i]);
        sorted.power_dbm.push_back(out.power_dbm[i]);
    }
    return sorted;
}

SaMarker
SdrReceiver::scanMaxAmplitude(const Trace &v_antenna, double f_lo_hz,
                              double f_hi_hz)
{
    metrics::Registry::instance().add("instruments.sdr.scans");
    requireConfig(f_hi_hz > f_lo_hz, "scan band must be non-empty");
    SaMarker best;
    const double bw = params_.sample_rate_hz;
    // Integer-indexed retune grid (lint R3): every window center is
    // recomputed from the band edge so the grid cannot drift with
    // accumulated rounding error. Steps of 0.8*bw leave a 20%
    // overlap between adjacent capture windows.
    const double f_first = f_lo_hz + 0.5 * bw;
    const double f_step = 0.8 * bw;
    for (std::size_t i = 0;; ++i) {
        const double fc = f_first + static_cast<double>(i) * f_step;
        if (!(fc < f_hi_hz + 0.5 * bw))
            break;
        tune(fc);
        const auto cap = capture(v_antenna);
        const auto sweep = spectrum(cap);
        const auto m = SpectrumAnalyzer::maxAmplitude(
            sweep, std::max(f_lo_hz, fc - 0.45 * bw),
            std::min(f_hi_hz, fc + 0.45 * bw));
        if (m.power_dbm > best.power_dbm)
            best = m;
    }
    return best;
}

} // namespace instruments
} // namespace emstress
