/**
 * @file
 * SCL implementation.
 */

#include "instruments/scl.h"

#include <cmath>

#include "util/error.h"

namespace emstress {
namespace instruments {

SyntheticCurrentLoad::SyntheticCurrentLoad(double amplitude_a,
                                           double duty)
    : amplitude_(amplitude_a), duty_(duty)
{
    requireConfig(amplitude_a > 0.0, "SCL amplitude must be positive");
    requireConfig(duty > 0.0 && duty < 1.0,
                  "SCL duty cycle must be in (0, 1)");
}

circuit::SourceWaveform
SyntheticCurrentLoad::waveform(double freq_hz) const
{
    requireConfig(freq_hz > 0.0, "SCL frequency must be positive");
    const double period = 1.0 / freq_hz;
    const double amp = amplitude_;
    const double duty = duty_;
    return [period, amp, duty](double t) {
        return std::fmod(t, period) < duty * period ? amp : 0.0;
    };
}

} // namespace instruments
} // namespace emstress
