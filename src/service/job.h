/**
 * @file
 * The search service's job model: what a tenant submits (JobSpec), how
 * the service names it (JobId), the lifecycle it moves through
 * (JobState), what the service streams back while it runs (JobEvent)
 * and what it returns at the end (JobResult).
 *
 * A job is a complete, self-contained description of one virus
 * search: platform preset + platform seed, feedback metric, GA budget
 * and evaluation settings. Everything that can change the search
 * *result* is part of the spec — which is what makes jobs
 * content-addressable (jobFingerprint) and lets the artifact store
 * serve a byte-identical result for a repeated spec without
 * re-searching. The tenant name is identity, not content: two tenants
 * submitting the same spec share one artifact.
 */

#ifndef EMSTRESS_SERVICE_JOB_H
#define EMSTRESS_SERVICE_JOB_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/emfi.h"
#include "core/virus_generator.h"
#include "ga/ga_engine.h"

namespace emstress {
namespace service {

/** Service-wide job identifier (1-based; 0 is "no job"). */
using JobId = std::uint64_t;

/** The built-in platforms a job may target (Table 1). */
enum class PlatformPreset : std::uint8_t
{
    kJunoA72 = 0, ///< Juno R2 Cortex-A72 domain (OC-DSO + SCL).
    kJunoA53 = 1, ///< Juno R2 Cortex-A53 domain (no visibility).
    kAthlon = 2,  ///< AMD Athlon II X4 (Kelvin pads).
};

/** Platform config of a preset. */
platform::PlatformConfig presetConfig(PlatformPreset preset);

/**
 * The instruction pool a preset's platform draws kernels from —
 * content-identical to Platform::pool() of that preset, so GA runs
 * seeded from either produce the same individuals. One shared
 * immutable instance per ISA family.
 */
const isa::InstructionPool &presetPool(PlatformPreset preset);

/** Stable lowercase name of a preset ("a72", "a53", "athlon"). */
std::string presetName(PlatformPreset preset);

/** Inverse of presetName; false when the name is unknown. */
bool presetFromName(const std::string &name, PlatformPreset &out);

/** What a job searches for. */
enum class JobMode : std::uint8_t
{
    kPassiveVirus = 0, ///< Maximize voltage noise (the classic job).
    kActiveEmfi = 1,   ///< Minimize faulting pulse energy.
};

/** Stable lowercase name of a mode ("virus", "emfi"). */
std::string jobModeName(JobMode mode);

/**
 * Scheduling priority class of a job. Classes multiply the tenant's
 * fair-share weight (an interactive generation charges less virtual
 * time than a batch one) and interactive work is drained ahead of
 * batch work within a tenant. Like the tenant name, the class is
 * identity, not content: it never enters the job fingerprint, so an
 * interactive and a batch submission of the same spec share one
 * artifact.
 */
enum class JobClass : std::uint8_t
{
    kBatch = 0,       ///< Throughput work, the default.
    kInteractive = 1, ///< Latency-sensitive; scheduled ahead.
};

/** Number of distinct job classes. */
inline constexpr std::size_t kJobClassCount = 2;

/** Stable lowercase name of a class ("batch", "interactive"). */
std::string jobClassName(JobClass job_class);

/**
 * Active-EMFI portion of a job spec: the victim and the pulse search
 * space, all result-defining and therefore fingerprinted. The victim
 * kernel is derived deterministically from (platform preset,
 * victim_seed, victim_length) so it never crosses the wire as code.
 */
struct EmfiJobSpec
{
    std::uint64_t victim_seed = 7; ///< Seeds the victim kernel draw.
    std::size_t victim_length = 8; ///< Victim loop-body length.
    std::size_t target_slot = 3;   ///< Victim instruction to fault.
    /// Fault-effects manifestation/corruption schedule seed.
    std::uint64_t schedule_seed = 1;
    double t0_max_s = 2e-6;        ///< Pulse-grid trigger-time span.
    double amplitude_max_a = 30.0; ///< Pulse-grid amplitude ceiling.
};

/** One submitted search job. */
struct JobSpec
{
    /// Tenant the job is accounted to (admission caps and fair
    /// queuing); never part of the job's content fingerprint.
    std::string tenant = "default";
    PlatformPreset platform = PlatformPreset::kJunoA72;
    /// Seeds the platform's instrument-noise streams.
    std::uint64_t platform_seed = 42;
    core::VirusMetric metric = core::VirusMetric::EmAmplitude;
    ga::GaConfig ga;         ///< GA budget (seed included).
    core::EvalSettings eval; ///< Measurement settings.
    JobMode mode = JobMode::kPassiveVirus;
    EmfiJobSpec emfi;        ///< Active-mode fields (ignored, and
                             ///< unfingerprinted, in passive mode).
    /// Priority class (scheduling identity, never fingerprinted).
    JobClass job_class = JobClass::kBatch;
    /// Target completion latency in seconds; 0 = no deadline. Purely
    /// observability (deadline-met/missed counters and the per-class
    /// latency ledger) — the scheduler never reorders on it, so
    /// results stay a pure function of the spec.
    double deadline_s = 0.0;
};

/** Job lifecycle. */
enum class JobState : std::uint8_t
{
    kQueued = 0,    ///< Admitted, waiting for its first generation.
    kRunning = 1,   ///< At least one generation stepped.
    kCompleted = 2, ///< Result available.
    kCancelled = 3, ///< Cancelled before completion; drained cleanly.
    kFailed = 4,    ///< An evaluation raised a non-fault error.
};

/** Display name of a state. */
std::string jobStateName(JobState state);

/** True for states a job never leaves. */
inline bool
isTerminal(JobState state)
{
    return state == JobState::kCompleted || state == JobState::kCancelled
        || state == JobState::kFailed;
}

/** What a finished job returns. */
struct JobResult
{
    std::string metric;  ///< Metric that drove the search.
    ga::GaResult ga;     ///< Full result: best, history, EvalStats.
    bool from_artifact_store = false; ///< Served, not searched.
    std::uint64_t fingerprint = 0;    ///< Content address of the spec.
};

/** Streamed progress of a running job (one generation). */
struct JobProgress
{
    std::size_t generation = 0;        ///< Reported generation index.
    std::size_t generations_done = 0;  ///< Steps executed (all phases).
    std::size_t generations_total = 0; ///< Steps the job will run.
    double best_fitness = 0.0;
    double mean_fitness = 0.0;
    double dominant_freq_hz = 0.0;
};

/** Event kinds a job emits over its lifetime. */
enum class JobEventType : std::uint8_t
{
    kAccepted = 0,  ///< Admitted and queued.
    kStarted = 1,   ///< First generation about to run.
    kProgress = 2,  ///< One reportable generation finished.
    kCompleted = 3, ///< Terminal: result attached.
    kCancelled = 4, ///< Terminal: drained without a result.
    kFailed = 5,    ///< Terminal: error attached.
};

/** One event in a job's stream. */
struct JobEvent
{
    JobEventType type = JobEventType::kAccepted;
    JobId id = 0;
    JobProgress progress; ///< kProgress payload.
    /// kCompleted payload (shared with the artifact store).
    std::shared_ptr<const JobResult> result;
    std::string error; ///< kFailed payload.
};

/**
 * Human-readable serialization of every result-defining field of a
 * job — the preimage of its content address. Mirrors the cross-bench
 * cache's budgetDescription contract: anything that can change the
 * search result must appear here, so a stored artifact can never be
 * served for a spec that would have searched differently. The tenant
 * is deliberately absent.
 */
std::string jobDescription(const JobSpec &spec);

/** Content address of a spec: FNV-1a of jobDescription. */
std::uint64_t jobFingerprint(const JobSpec &spec);

/**
 * Build the platform-backed fitness evaluator a spec asks for. The
 * returned evaluator owns its platform replica (safe to keep past
 * this call) and clones for parallel batches. This is the service's
 * default evaluator factory; tests substitute synthetic ones.
 */
std::unique_ptr<ga::FitnessEvaluator>
makePlatformEvaluator(const JobSpec &spec);

/**
 * Pluggable evaluator construction: maps a spec to the evaluator its
 * job runs against. Lets tests and benches run the full service path
 * with cheap deterministic evaluators (or fault-injecting wrappers)
 * instead of platform simulation.
 */
using EvaluatorFactory =
    std::function<std::unique_ptr<ga::FitnessEvaluator>(
        const JobSpec &)>;

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_JOB_H
