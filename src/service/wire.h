/**
 * @file
 * Length-prefixed binary wire protocol of the search service.
 *
 * Framing: every message is `u32 length | u8 type | body`, all
 * little-endian, where `length` counts the type byte plus the body.
 * Bodies are flat field sequences — unsigned integers in fixed-width
 * little-endian, doubles as their IEEE-754 bit patterns in a u64
 * (std::bit_cast both ways), strings as `u32 length | bytes`. Routing
 * doubles through their bit pattern is what makes results byte-exact
 * across the wire: a fitness decoded on the client compares equal,
 * bit for bit, to the fitness the fleet computed.
 *
 * The codec is transport-agnostic: the socket transport writes frames
 * to a TCP stream, and the in-process transport round-trips every
 * spec and result through this same encoding so tests pin the codec's
 * bit-exactness without opening a socket.
 *
 * Protocol flow (one request/stream at a time per connection):
 *   client                         server
 *   kPing(version)             ->
 *                              <- kPong(version)
 *   kSubmit(token, JobSpec)    ->
 *                              <- kAccepted(id) | kError(reason)
 *                              <- kProgress(id, progress)...
 *                              <- kCompleted(id, JobResult)
 *                               | kCancelled(id) | kFailed(id, err)
 *   kResume(token, last_gen)   ->    (fresh connection, after a drop)
 *                              <- kResumed(id, platform, done)
 *                               | kError(reason)
 *                              <- kProgress/terminal as for kSubmit,
 *                                 replayed past last_gen
 *   kCancel(id)                ->    (usually a second connection)
 *                              <- kAck(ok)
 *   kMetrics                   ->
 *                              <- kMetricsReply(json)
 *   kShutdown                  ->
 *                              <- kAck(1), then the server exits
 *
 * Resume tokens are client-generated 64-bit values (0 = streaming
 * without resume support, the version-1 behavior). A kSubmit carrying
 * a nonzero token registers it with the scheduler; after a connection
 * drop the scheduler parks the stream for a grace window and a
 * kResume on a fresh connection re-attaches, replaying every retained
 * event whose generation count exceeds last_acked_generation.
 */

#ifndef EMSTRESS_SERVICE_WIRE_H
#define EMSTRESS_SERVICE_WIRE_H

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/pool.h"
#include "service/job.h"

namespace emstress {
namespace service {

/** Protocol version exchanged in kPing/kPong. Version 2 added resume
 *  tokens on kSubmit, the kResume/kResumed pair and the priority
 *  class + deadline fields of JobSpec. */
inline constexpr std::uint32_t kProtocolVersion = 2;

/** Upper bound on a frame body (malformed-stream guard). */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Message types. Requests < 0x80, responses >= 0x80. */
enum class MsgType : std::uint8_t
{
    kPing = 0x01,
    kSubmit = 0x02,
    kCancel = 0x03,
    kMetrics = 0x04,
    kShutdown = 0x05,
    kResume = 0x06,

    kPong = 0x81,
    kAccepted = 0x82,
    kProgress = 0x83,
    kCompleted = 0x84,
    kCancelled = 0x85,
    kFailed = 0x86,
    kAck = 0x87,
    kMetricsReply = 0x88,
    kResumed = 0x89,
    kError = 0xFF,
};

/**
 * Validate a raw type byte against the known message set. The frame
 * reader funnels every received byte through this before dispatch, so
 * an out-of-enum value can never reach a switch as a MsgType.
 * @throws ProtocolError for unknown bytes.
 */
MsgType msgTypeFromWire(std::uint8_t raw);

/** Malformed frame or field. */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Serializer for one message body. */
class WireWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(
                static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(
                static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** IEEE-754 bit pattern: the exact double, not a decimal trip. */
    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        if (s.size() > kMaxFrameBytes)
            throw ProtocolError("string field too large");
        u32(static_cast<std::uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked deserializer for one message body. */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit WireReader(const std::vector<std::uint8_t> &bytes)
        : WireReader(bytes.data(), bytes.size())
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      n);
        pos_ += n;
        return s;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

    /** Assert the body was consumed exactly. */
    void
    expectEnd() const
    {
        if (pos_ != size_)
            throw ProtocolError("trailing bytes in message body");
    }

  private:
    void
    need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw ProtocolError("truncated message body");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Assemble a full frame (length prefix + type + body). */
std::vector<std::uint8_t> buildFrame(MsgType type,
                                     const WireWriter &body);

/** Body of a kResume request: which stream to re-attach and how far
 *  the client already got. */
struct ResumeRequest
{
    /// Client-generated token the original kSubmit carried.
    std::uint64_t token = 0;
    /// generations_done of the last progress event the client
    /// processed; replay starts past this point.
    std::uint64_t last_acked_generation = 0;
};

/** Body of a kResumed reply: the re-attached stream's identity. */
struct ResumeReply
{
    JobId id = 0;
    PlatformPreset platform = PlatformPreset::kJunoA72;
    /// Generations the job has stepped so far (resume telemetry).
    std::uint64_t generations_done = 0;
};

/// @{ Body codecs for the structured payloads.
void encodeJobSpec(WireWriter &w, const JobSpec &spec);
JobSpec decodeJobSpec(WireReader &r);

void encodeResumeRequest(WireWriter &w, const ResumeRequest &req);
ResumeRequest decodeResumeRequest(WireReader &r);

void encodeResumeReply(WireWriter &w, const ResumeReply &reply);
ResumeReply decodeResumeReply(WireReader &r);

void encodeProgress(WireWriter &w, const JobProgress &p);
JobProgress decodeProgress(WireReader &r);

/** Kernels inside a result serialize against the job's pool. */
void encodeJobResult(WireWriter &w, const JobResult &result,
                     const isa::InstructionPool &pool);
JobResult decodeJobResult(WireReader &r,
                          const isa::InstructionPool &pool);
/// @}

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_WIRE_H
