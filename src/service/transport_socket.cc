/**
 * @file
 * Socket transport implementation. Loopback TCP, blocking I/O, one
 * protocol stream per connection. Socket syscalls live here and
 * nowhere else in the service (lint-sanctioned, tag
 * "socket-transport").
 */

#include "service/transport_socket.h"

#include <arpa/inet.h>  // lint: socket-transport
#include <netinet/in.h> // lint: socket-transport
#include <sys/socket.h> // lint: socket-transport
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/error.h"
#include "util/metrics.h"

namespace emstress {
namespace service {

namespace {

/** recv() exactly n bytes; false on orderly EOF at a boundary. */
bool
recvAll(int fd, std::uint8_t *buf, std::size_t n, bool eof_ok)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t rc =
            ::recv(fd, buf + got, n - got, 0); // lint: socket-transport
        if (rc == 0) {
            if (got == 0 && eof_ok)
                return false;
            throwSimulationError("connection closed mid-frame");
        }
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwSimulationError("socket read failed");
        }
        got += static_cast<std::size_t>(rc);
    }
    return true;
}

/** send() all bytes (MSG_NOSIGNAL: a gone peer is an error, not a
 *  process signal). */
void
sendAll(int fd, const std::uint8_t *buf, std::size_t n)
{
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t rc = ::send(fd, buf + sent, n - sent,
                                  MSG_NOSIGNAL); // lint: socket-transport
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwSimulationError("socket write failed");
        }
        sent += static_cast<std::size_t>(rc);
    }
}

} // namespace

void
writeFrame(int fd, MsgType type, const WireWriter &body)
{
    const std::vector<std::uint8_t> frame = buildFrame(type, body);
    sendAll(fd, frame.data(), frame.size());
}

bool
readFrame(int fd, Frame &out)
{
    std::uint8_t head[4];
    if (!recvAll(fd, head, sizeof head, /*eof_ok=*/true))
        return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
    if (len == 0 || len > kMaxFrameBytes)
        throw ProtocolError("bad frame length");
    std::vector<std::uint8_t> payload(len);
    recvAll(fd, payload.data(), payload.size(), /*eof_ok=*/false);
    // Validate before the cast: an unknown byte must never flow into
    // a dispatch switch as an out-of-enum MsgType.
    out.type = msgTypeFromWire(payload[0]);
    out.body.assign(payload.begin() + 1, payload.end());
    return true;
}

// ---------------------------------------------------------- server

SocketServer::SocketServer(SearchService &service, Options options)
    : service_(service)
{
    listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM, 0); // lint: socket-transport
    requireSim(listen_fd_ >= 0, "socket() failed");

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one); // lint: socket-transport

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr)
        != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throwSimulationError("bind() failed — port in use?");
    }
    if (::listen(listen_fd_, 64) != 0) { // lint: socket-transport
        ::close(listen_fd_);
        listen_fd_ = -1;
        throwSimulationError("listen() failed");
    }

    socklen_t alen = sizeof addr;
    requireSim(::getsockname(listen_fd_,
                             reinterpret_cast<sockaddr *>(&addr),
                             &alen)
                   == 0,
               "getsockname() failed");
    port_ = ntohs(addr.sin_port);
}

SocketServer::~SocketServer()
{
    requestStop();
    for (std::thread &t : connections_)
        if (t.joinable())
            t.join();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

void
SocketServer::requestStop()
{
    stop_.store(true);
    // Connection threads parked in waitStreamEvent would otherwise
    // block the destructor's join forever once their jobs go quiet.
    service_.interruptWaits();
    if (listen_fd_ >= 0) {
        // Wakes a blocked accept() so serve() can observe stop_.
        ::shutdown(listen_fd_, SHUT_RDWR); // lint: socket-transport
    }
    // Threads blocked in readFrame on an idle connection (a client
    // holding its stream open between requests) only unblock when
    // their socket dies; shut every live connection down so the
    // destructor's join cannot deadlock on a quiet peer.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_)
        ::shutdown(fd, SHUT_RDWR); // lint: socket-transport
}

void
SocketServer::registerConnection(int fd)
{
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
}

void
SocketServer::deregisterAndClose(int fd)
{
    // Close under the registry lock: requestStop() must never
    // shutdown() an fd number the kernel already recycled.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
        if (*it == fd) {
            conn_fds_.erase(it);
            break;
        }
    }
    ::close(fd);
}

void
SocketServer::serve()
{
    while (!stop_.load()) {
        const int fd =
            ::accept(listen_fd_, nullptr, // lint: socket-transport
                     nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listen socket shut down
        }
        if (stop_.load()) {
            ::close(fd);
            break;
        }
        registerConnection(fd);
        connections_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
SocketServer::streamJob(int fd, JobId id,
                        std::uint64_t stream_epoch,
                        PlatformPreset platform)
{
    try {
        for (bool streaming = true; streaming;) {
            const JobEvent ev =
                service_.waitStreamEvent(id, stream_epoch);
            WireWriter w;
            switch (ev.type) {
            case JobEventType::kAccepted:
            case JobEventType::kStarted:
                continue; // already signalled / implicit
            case JobEventType::kProgress:
                w.u64(ev.id);
                encodeProgress(w, ev.progress);
                writeFrame(fd, MsgType::kProgress, w);
                break;
            case JobEventType::kCompleted:
                w.u64(ev.id);
                encodeJobResult(w, *ev.result,
                                presetPool(platform));
                writeFrame(fd, MsgType::kCompleted, w);
                streaming = false;
                break;
            case JobEventType::kCancelled:
                w.u64(ev.id);
                writeFrame(fd, MsgType::kCancelled, w);
                streaming = false;
                break;
            case JobEventType::kFailed:
                w.u64(ev.id);
                w.str(ev.error);
                writeFrame(fd, MsgType::kFailed, w);
                streaming = false;
                break;
            }
        }
    } catch (...) {
        // The peer vanished mid-stream (write failed) or a newer
        // stream took the job. Park instead of cancel: the job keeps
        // running through the grace window, and parkStream's epoch
        // guard makes this a no-op when the job moved on already.
        service_.parkStream(id, stream_epoch);
        throw;
    }
}

struct SocketServer::ConnGuard
{
    SocketServer &server;
    int fd;
    ~ConnGuard() { server.deregisterAndClose(fd); }
};

void
SocketServer::handleConnection(int fd)
{
    ConnGuard guard{*this, fd};
    metrics::Registry::instance().add("service.connections");
    try {
        Frame frame;
        while (readFrame(fd, frame)) {
            WireReader r(frame.body);
            switch (frame.type) {
            case MsgType::kPing: {
                (void)r.u32(); // client version (accepted as-is)
                WireWriter w;
                w.u32(kProtocolVersion);
                writeFrame(fd, MsgType::kPong, w);
                break;
            }
            case MsgType::kSubmit: {
                const std::uint64_t resume_token = r.u64();
                const JobSpec spec = decodeJobSpec(r);
                r.expectEnd();
                const Submission sub =
                    service_.submit(spec, resume_token);
                if (!sub.accepted) {
                    WireWriter w;
                    w.str(sub.reject_reason);
                    writeFrame(fd, MsgType::kError, w);
                    break;
                }
                {
                    WireWriter w;
                    w.u64(sub.id);
                    writeFrame(fd, MsgType::kAccepted, w);
                }
                const std::uint64_t epoch =
                    service_.attachStream(sub.id, 0);
                streamJob(fd, sub.id, epoch, spec.platform);
                break;
            }
            case MsgType::kResume: {
                const ResumeRequest req = decodeResumeRequest(r);
                r.expectEnd();
                const JobId id =
                    service_.resolveResumeToken(req.token);
                if (id == 0) {
                    // Unknown token: most often a daemon restart
                    // that lost the in-memory stream. The client's
                    // fallback is to re-submit the spec.
                    WireWriter w;
                    w.str("unknown resume token");
                    writeFrame(fd, MsgType::kError, w);
                    break;
                }
                const std::uint64_t epoch = service_.attachStream(
                    id, req.last_acked_generation);
                const JobStatus st = service_.status(id);
                ResumeReply reply;
                reply.id = id;
                reply.platform = st.platform;
                reply.generations_done = st.generations_done;
                WireWriter w;
                encodeResumeReply(w, reply);
                writeFrame(fd, MsgType::kResumed, w);
                metrics::Registry::instance().add(
                    "service.streams_resumed");
                streamJob(fd, id, epoch, st.platform);
                break;
            }
            case MsgType::kCancel: {
                const JobId id = r.u64();
                r.expectEnd();
                const bool ok = service_.cancel(id);
                WireWriter w;
                w.u8(ok ? 1 : 0);
                writeFrame(fd, MsgType::kAck, w);
                break;
            }
            case MsgType::kMetrics: {
                WireWriter w;
                w.str(metrics::toJson(
                    metrics::Registry::instance().snapshot()));
                writeFrame(fd, MsgType::kMetricsReply, w);
                break;
            }
            case MsgType::kShutdown: {
                WireWriter w;
                w.u8(1);
                writeFrame(fd, MsgType::kAck, w);
                requestStop();
                return;
            }
            default: {
                WireWriter w;
                w.str("unexpected message type");
                writeFrame(fd, MsgType::kError, w);
                return;
            }
            }
        }
    } catch (const std::exception &) {
        // Protocol violation or the peer vanished: drop the
        // connection. Jobs already admitted keep running; their
        // events stay queued on the service.
    }
}

// ---------------------------------------------------------- client

SocketClient::SocketClient(const std::string &host,
                           std::uint16_t port)
    : host_(host), port_(port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0); // lint: socket-transport
    requireSim(fd_ >= 0, "socket() failed");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    requireConfig(
        ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
        "host must be a dotted IPv4 address");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr)
        != 0) { // lint: socket-transport
        ::close(fd_);
        fd_ = -1;
        throwSimulationError("connect() failed — is emstressd running?");
    }
}

SocketClient::~SocketClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Frame
SocketClient::request(MsgType type, const WireWriter &body)
{
    writeFrame(fd_, type, body);
    Frame reply;
    if (!readFrame(fd_, reply))
        throwSimulationError("server closed the connection");
    return reply;
}

bool
SocketClient::ping()
{
    WireWriter w;
    w.u32(kProtocolVersion);
    try {
        const Frame reply = request(MsgType::kPing, w);
        if (reply.type != MsgType::kPong)
            return false;
        WireReader r(reply.body);
        return r.u32() == kProtocolVersion;
    } catch (const std::exception &) {
        return false;
    }
}

Submission
SocketClient::submit(const JobSpec &spec)
{
    return submit(spec, /*resume_token=*/0);
}

Submission
SocketClient::submit(const JobSpec &spec,
                     std::uint64_t resume_token)
{
    WireWriter w;
    w.u64(resume_token);
    encodeJobSpec(w, spec);
    const Frame reply = request(MsgType::kSubmit, w);
    Submission sub;
    WireReader r(reply.body);
    if (reply.type == MsgType::kError) {
        sub.reject_reason = r.str();
        return sub;
    }
    if (reply.type != MsgType::kAccepted)
        throw ProtocolError("expected kAccepted or kError");
    sub.id = r.u64();
    sub.accepted = true;
    presets_[sub.id] = spec.platform;
    return sub;
}

ResumeReply
SocketClient::resume(const ResumeRequest &req)
{
    WireWriter w;
    encodeResumeRequest(w, req);
    const Frame frame = request(MsgType::kResume, w);
    WireReader r(frame.body);
    if (frame.type == MsgType::kError)
        throw ProtocolError("resume rejected: " + r.str());
    if (frame.type != MsgType::kResumed)
        throw ProtocolError("expected kResumed or kError");
    const ResumeReply reply = decodeResumeReply(r);
    presets_[reply.id] = reply.platform;
    return reply;
}

JobEvent
SocketClient::nextEvent(JobId id)
{
    Frame frame;
    if (!readFrame(fd_, frame))
        throwSimulationError("server closed the event stream");
    JobEvent ev;
    WireReader r(frame.body);
    switch (frame.type) {
    case MsgType::kProgress:
        ev.type = JobEventType::kProgress;
        ev.id = r.u64();
        ev.progress = decodeProgress(r);
        break;
    case MsgType::kCompleted: {
        ev.type = JobEventType::kCompleted;
        ev.id = r.u64();
        PlatformPreset preset = PlatformPreset::kJunoA72;
        auto it = presets_.find(ev.id);
        if (it != presets_.end())
            preset = it->second;
        ev.result = std::make_shared<const JobResult>(
            decodeJobResult(r, presetPool(preset)));
        break;
    }
    case MsgType::kCancelled:
        ev.type = JobEventType::kCancelled;
        ev.id = r.u64();
        break;
    case MsgType::kFailed:
        ev.type = JobEventType::kFailed;
        ev.id = r.u64();
        ev.error = r.str();
        break;
    default:
        throw ProtocolError("unexpected frame in event stream");
    }
    if (ev.id != id)
        throw ProtocolError("event for a different job id");
    return ev;
}

bool
SocketClient::cancel(JobId id)
{
    // The main connection is busy streaming this job's events, so
    // cancellation rides a short-lived side connection.
    SocketClient side(host_, port_);
    WireWriter w;
    w.u64(id);
    const Frame reply = side.request(MsgType::kCancel, w);
    if (reply.type != MsgType::kAck)
        return false;
    WireReader r(reply.body);
    return r.u8() != 0;
}

std::string
SocketClient::metricsJson()
{
    const Frame reply = request(MsgType::kMetrics, WireWriter());
    if (reply.type != MsgType::kMetricsReply)
        throw ProtocolError("expected kMetricsReply");
    WireReader r(reply.body);
    return r.str();
}

bool
SocketClient::shutdownServer()
{
    const Frame reply = request(MsgType::kShutdown, WireWriter());
    if (reply.type != MsgType::kAck)
        return false;
    WireReader r(reply.body);
    return r.u8() != 0;
}

// --------------------------------------------- reconnecting client

ReconnectingClient::ReconnectingClient(Options options)
    : options_(std::move(options))
{
    requireConfig(options_.resume_token != 0,
                  "reconnecting client needs a nonzero resume token");
    requireConfig(options_.retry.max_attempts >= 1,
                  "reconnect policy needs at least one attempt");
    const std::uint16_t port = options_.port_provider
        ? options_.port_provider()
        : options_.port;
    client_ = std::make_unique<SocketClient>(options_.host, port);
}

Submission
ReconnectingClient::submit(const JobSpec &spec)
{
    spec_ = spec; // retained: the restart fallback re-submits it
    sub_ = client_->submit(spec_, options_.resume_token);
    return sub_;
}

void
ReconnectingClient::dropConnection()
{
    // Sever without goodbye, exactly like a daemon crash: the next
    // nextEvent() read fails and enters the recovery ladder.
    client_.reset();
}

void
ReconnectingClient::recoverStream()
{
    const RetryPolicy &retry = options_.retry;
    for (std::uint32_t attempt = 1;; ++attempt) {
        // Bounded deterministic backoff, slept for real: this is the
        // host side of the link, waiting out a daemon restart.
        const double wait_s = retry.backoffFor(attempt);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            wait_s)); // lint: socket-transport
        try {
            const std::uint16_t port = options_.port_provider
                ? options_.port_provider()
                : options_.port;
            auto fresh =
                std::make_unique<SocketClient>(options_.host, port);
            ResumeRequest req;
            req.token = options_.resume_token;
            req.last_acked_generation = last_acked_generation_;
            try {
                const ResumeReply reply = fresh->resume(req);
                sub_.id = reply.id;
                sub_.accepted = true;
                client_ = std::move(fresh);
                ++resumes_;
                return;
            } catch (const ProtocolError &) {
                // Token unknown — the daemon restarted and lost the
                // stream. Re-submit the retained spec under the same
                // token: determinism plus the persistent artifact
                // store make the result bit-identical, and progress
                // dedup below hides any replayed generations.
                const Submission sub =
                    fresh->submit(spec_, options_.resume_token);
                requireSim(sub.accepted,
                           "resubmit after restart rejected: "
                               + sub.reject_reason);
                sub_ = sub;
                client_ = std::move(fresh);
                ++resubmits_;
                return;
            }
        } catch (const std::exception &) {
            if (attempt >= retry.max_attempts)
                throw;
        }
    }
}

JobEvent
ReconnectingClient::nextEvent()
{
    requireSim(sub_.accepted,
               "nextEvent before a successful submit");
    for (;;) {
        JobEvent ev;
        try {
            if (!client_)
                throwSimulationError("connection severed");
            ev = client_->nextEvent(sub_.id);
        } catch (const std::exception &) {
            recoverStream();
            continue;
        }
        if (ev.type == JobEventType::kProgress) {
            // Dedup: a replayed stream may repeat generations the
            // caller already consumed (e.g. a restarted daemon
            // re-running the spec from scratch).
            if (ev.progress.generations_done
                <= static_cast<std::size_t>(
                    last_acked_generation_))
                continue;
            last_acked_generation_ = ev.progress.generations_done;
        }
        return ev;
    }
}

} // namespace service
} // namespace emstress
