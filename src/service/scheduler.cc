/**
 * @file
 * SearchService implementation.
 *
 * Locking: one mutex guards every scheduling structure (jobs,
 * tenants, queues, events). It is dropped for the expensive parts —
 * evaluator construction and driver->step(), i.e. the platform
 * simulation — so transports and other runners stay responsive while
 * generations evaluate on the fleet. A job being stepped is claimed
 * via Job::stepping, so at most one thread is ever inside a given
 * job's driver.
 *
 * Latency metrics recorded here (queue-wait, job latency) are
 * observability only, never control flow: the scheduler's decisions
 * are pure functions of submission order and virtual time, which is
 * what keeps manual-mode tests exactly reproducible. Wall-clock reads
 * live behind metrics::enabled() and are sanctioned for scheduler/
 * transport files only (see emstress-lint) — worker evaluation paths
 * stay clock-free.
 */

#include "service/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/error.h"
#include "util/metrics.h"

namespace emstress {
namespace service {

namespace {

/** Progress payload of one reportable generation record. */
JobProgress
progressOf(const ga::GenerationRecord &rec, const ga::GaDriver &driver)
{
    JobProgress p;
    p.generation = rec.generation;
    p.generations_done = driver.generationsDone();
    p.generations_total = driver.totalGenerations();
    p.best_fitness = rec.best_fitness;
    p.mean_fitness = rec.mean_fitness;
    p.dominant_freq_hz = rec.best_detail.dominant_freq_hz;
    return p;
}

/** Queue ring index of a class (interactive drains first). */
std::size_t
classIndex(JobClass job_class)
{
    return static_cast<std::size_t>(job_class);
}

} // namespace

SearchService::SearchService(ServiceConfig config)
    : config_(std::move(config)), store_(config_.artifacts),
      fleet_(config_.fleet_threads)
{
    requireConfig(config_.max_jobs_in_flight >= 1,
                  "service needs capacity for at least one job");
    requireConfig(config_.max_jobs_per_tenant >= 1,
                  "tenants need capacity for at least one job");
    requireConfig(config_.default_tenant_weight > 0.0,
                  "tenant weights must be positive");
    requireConfig(config_.interactive_weight_boost > 0.0,
                  "interactive weight boost must be positive");
    for (const auto &[name, weight] : config_.tenant_weights) {
        (void)name;
        requireConfig(weight > 0.0, "tenant weights must be positive");
    }
    if (!config_.evaluator_factory)
        config_.evaluator_factory = &makePlatformEvaluator;
    runners_.reserve(config_.runners);
    for (std::size_t r = 0; r < config_.runners; ++r)
        runners_.emplace_back([this] { runnerLoop(); });
}

SearchService::~SearchService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : runners_)
        t.join();
}

SearchService::Job &
SearchService::jobRef(JobId id)
{
    const auto it = jobs_.find(id);
    requireConfig(it != jobs_.end(), "unknown job id");
    return *it->second;
}

const SearchService::Job &
SearchService::jobRef(JobId id) const
{
    const auto it = jobs_.find(id);
    requireConfig(it != jobs_.end(), "unknown job id");
    return *it->second;
}

double
SearchService::minActiveVtimeLocked() const
{
    double min_v = 0.0;
    bool any = false;
    for (const auto &[name, tenant] : tenants_) {
        (void)name;
        // Live (not merely queued): a tenant whose only job is
        // momentarily being stepped is still active, and must keep
        // its fair-share credit.
        if (tenant.live == 0)
            continue;
        if (!any || tenant.vtime < min_v)
            min_v = tenant.vtime;
        any = true;
    }
    return any ? min_v : 0.0;
}

void
SearchService::enqueueRunnableLocked(Job &job)
{
    Tenant &tenant = tenants_[job.spec.tenant];
    tenant.queues[classIndex(job.spec.job_class)].push_back(job.id);
    ++runnable_;
    work_cv_.notify_one();
}

SearchService::Job *
SearchService::pickNextLocked()
{
    while (runnable_ > 0) {
        Tenant *best = nullptr;
        for (auto &[name, tenant] : tenants_) {
            (void)name;
            if (tenant.queues[0].empty() && tenant.queues[1].empty())
                continue;
            // Strict < plus in-order iteration of the name-sorted
            // tenant map = deterministic tie-break by tenant name.
            if (best == nullptr || tenant.vtime < best->vtime)
                best = &tenant;
        }
        if (best == nullptr)
            return nullptr; // runnable_ out of sync; defensive.
        // Interactive work drains ahead of batch within the tenant.
        auto &ring =
            best->queues[classIndex(JobClass::kInteractive)].empty()
                ? best->queues[classIndex(JobClass::kBatch)]
                : best->queues[classIndex(JobClass::kInteractive)];
        const JobId id = ring.front();
        ring.pop_front();
        --runnable_;
        Job &job = jobRef(id);
        // A queued entry may have been cancelled out from under the
        // queue; skip it rather than charging the tenant for it.
        if (isTerminal(job.state) || job.stepping)
            continue;
        // An interactive generation charges less virtual time, so
        // interactive-heavy tenants come back around sooner.
        const double boost =
            job.spec.job_class == JobClass::kInteractive
                ? config_.interactive_weight_boost
                : 1.0;
        best->vtime += 1.0 / (best->weight * boost);
        job.stepping = true;
        return &job;
    }
    return nullptr;
}

void
SearchService::stepJob(std::unique_lock<std::mutex> &lock, Job &job)
{
    const bool observe = metrics::enabled();
    if (job.state == JobState::kQueued) {
        job.state = JobState::kRunning;
        JobEvent ev;
        ev.type = JobEventType::kStarted;
        ev.id = job.id;
        job.events.push_back(std::move(ev));
        events_cv_.notify_all();
    }
    if (observe && !job.first_step_recorded) {
        job.first_step_recorded = true;
        metrics::Registry::instance().recordLatency(
            "service.queue_wait",
            metrics::monotonicSeconds() - job.submit_s);
    }

    // The expensive part runs unlocked: evaluator construction spins
    // up a platform replica, and one driver step simulates a whole
    // generation on the fleet.
    ga::GaDriver *driver = job.driver.get();
    const JobSpec &spec = job.spec;
    const auto cancel_flag = job.cancel_flag;
    lock.unlock();

    std::string error;
    const ga::GenerationRecord *rec = nullptr;
    std::unique_ptr<ga::FitnessEvaluator> new_evaluator;
    std::unique_ptr<ga::GaDriver> new_driver;
    try {
        if (driver == nullptr) {
            new_evaluator = config_.evaluator_factory(spec);
            requireSim(new_evaluator != nullptr,
                       "evaluator factory returned null");
            ga::BatchHooks hooks;
            hooks.fleet = &fleet_;
            hooks.cancel = cancel_flag;
            new_driver = std::make_unique<ga::GaDriver>(
                presetPool(spec.platform), spec.ga, *new_evaluator,
                std::vector<isa::Kernel>{}, hooks);
            driver = new_driver.get();
        }
        rec = driver->step();
    } catch (const std::exception &e) {
        error = e.what();
        if (error.empty())
            error = "unknown evaluation error";
    }

    lock.lock();
    if (new_evaluator)
        job.evaluator = std::move(new_evaluator);
    if (new_driver)
        job.driver = std::move(new_driver);
    job.stepping = false;

    if (!error.empty()) {
        finalizeFailed(job, error);
        return;
    }
    if (observe)
        metrics::Registry::instance().add(
            "service.generations_stepped");
    if (rec != nullptr) {
        JobEvent ev;
        ev.type = JobEventType::kProgress;
        ev.id = job.id;
        ev.progress = progressOf(*rec, *job.driver);
        job.events.push_back(std::move(ev));
        events_cv_.notify_all();
    }
    if (job.cancel_requested || job.driver->cancelled()) {
        finalizeCancelled(job);
        return;
    }
    if (job.driver->done()) {
        finalizeCompleted(job);
        return;
    }
    enqueueRunnableLocked(job);
}

void
SearchService::finalizeCommon(Job &job, JobEvent event)
{
    Tenant &tenant = tenants_[job.spec.tenant];
    requireSim(tenant.live > 0, "tenant live-count underflow");
    --tenant.live;
    requireSim(live_jobs_ > 0, "service live-count underflow");
    --live_jobs_;
    if (metrics::enabled()) {
        auto &reg = metrics::Registry::instance();
        const double latency =
            metrics::monotonicSeconds() - job.submit_s;
        reg.recordLatency("service.job_latency", latency);
        // Per-class ledger: the priority machinery is only worth its
        // complexity if interactive p95/p99 visibly beats batch.
        reg.recordLatency(std::string("service.job_latency.")
                              + jobClassName(job.spec.job_class),
                          latency);
        if (job.spec.deadline_s > 0.0)
            reg.add(latency <= job.spec.deadline_s
                        ? "service.deadline_met"
                        : "service.deadline_missed");
    }
    job.events.push_back(std::move(event));
    events_cv_.notify_all();
    ++searches_finished_;
    reapParkedLocked();
}

void
SearchService::finalizeCompleted(Job &job)
{
    auto result = std::make_shared<JobResult>();
    // Report the metric that actually drove the search: active-EMFI
    // jobs (and substituted test evaluators) are not described by the
    // passive virus-metric enum.
    result->metric = job.evaluator
        ? job.evaluator->metricName()
        : core::virusMetricName(job.spec.metric);
    result->ga = job.driver->finish();
    result->fingerprint = job.fingerprint;
    job.result = result;
    job.state = JobState::kCompleted;
    // Retire the heavy per-job machinery eagerly: hundreds of live
    // platform replicas would otherwise linger until the map dies.
    job.driver.reset();
    job.evaluator.reset();
    if (config_.use_artifact_store) {
        store_.insert(job.fingerprint, result, job.spec.platform);
        // Logical time = completed searches.
        store_.advanceEpoch();
    }
    if (metrics::enabled())
        metrics::Registry::instance().add("service.jobs_completed");
    JobEvent ev;
    ev.type = JobEventType::kCompleted;
    ev.id = job.id;
    ev.result = std::move(result);
    finalizeCommon(job, std::move(ev));
}

void
SearchService::finalizeCancelled(Job &job)
{
    job.state = JobState::kCancelled;
    job.driver.reset();
    job.evaluator.reset();
    if (metrics::enabled())
        metrics::Registry::instance().add("service.jobs_cancelled");
    JobEvent ev;
    ev.type = JobEventType::kCancelled;
    ev.id = job.id;
    finalizeCommon(job, std::move(ev));
}

void
SearchService::finalizeFailed(Job &job, const std::string &error)
{
    job.state = JobState::kFailed;
    job.driver.reset();
    job.evaluator.reset();
    if (metrics::enabled())
        metrics::Registry::instance().add("service.jobs_failed");
    JobEvent ev;
    ev.type = JobEventType::kFailed;
    ev.id = job.id;
    ev.error = error;
    finalizeCommon(job, std::move(ev));
}

Submission
SearchService::submit(const JobSpec &spec,
                      std::uint64_t resume_token)
{
    Submission out;
    try {
        ga::validateGaConfig(spec.ga);
        requireConfig(!spec.tenant.empty(), "tenant must be named");
    } catch (const ConfigError &e) {
        out.reject_reason = e.what();
        if (metrics::enabled())
            metrics::Registry::instance().add("service.jobs_rejected");
        return out;
    }

    const std::uint64_t fingerprint = jobFingerprint(spec);
    std::shared_ptr<const JobResult> served;
    if (config_.use_artifact_store)
        served = store_.fetch(fingerprint);

    std::lock_guard<std::mutex> lock(mutex_);
    if (metrics::enabled()) {
        auto &reg = metrics::Registry::instance();
        reg.add("service.jobs_submitted");
        if (config_.use_artifact_store)
            reg.add(served ? "service.artifact_hits"
                           : "service.artifact_misses");
    }

    if (served) {
        // Content hit: the stored artifact IS the result this spec's
        // search would produce. Complete instantly; no slot consumed.
        Job &job = *jobs_
                        .emplace(next_id_,
                                 std::make_unique<Job>())
                        .first->second;
        job.id = next_id_++;
        job.spec = spec;
        job.fingerprint = fingerprint;
        job.state = JobState::kCompleted;
        job.resume_token = resume_token;
        if (resume_token != 0)
            resume_tokens_[resume_token] = job.id;
        auto result = std::make_shared<JobResult>(*served);
        result->from_artifact_store = true;
        job.result = result;
        JobEvent accepted;
        accepted.type = JobEventType::kAccepted;
        accepted.id = job.id;
        job.events.push_back(std::move(accepted));
        JobEvent completed;
        completed.type = JobEventType::kCompleted;
        completed.id = job.id;
        completed.result = std::move(result);
        job.events.push_back(std::move(completed));
        events_cv_.notify_all();
        if (metrics::enabled())
            metrics::Registry::instance().add(
                "service.jobs_completed");
        out.id = job.id;
        out.accepted = true;
        return out;
    }

    if (live_jobs_ >= config_.max_jobs_in_flight) {
        out.reject_reason = "service at capacity";
        if (metrics::enabled())
            metrics::Registry::instance().add("service.jobs_rejected");
        return out;
    }
    Tenant &tenant = tenants_[spec.tenant];
    if (tenant.weight == 1.0 && tenant.vtime == 0.0
        && tenant.live == 0 && tenant.queues[0].empty()
        && tenant.queues[1].empty()) {
        // Freshly materialized tenant: resolve its weight once.
        const auto it = config_.tenant_weights.find(spec.tenant);
        tenant.weight = it != config_.tenant_weights.end()
            ? it->second
            : config_.default_tenant_weight;
    }
    if (tenant.live >= config_.max_jobs_per_tenant) {
        out.reject_reason = "tenant at capacity";
        if (metrics::enabled())
            metrics::Registry::instance().add("service.jobs_rejected");
        return out;
    }

    Job &job =
        *jobs_.emplace(next_id_, std::make_unique<Job>())
             .first->second;
    job.id = next_id_++;
    job.spec = spec;
    job.fingerprint = fingerprint;
    job.state = JobState::kQueued;
    job.cancel_flag = makeCancelFlag();
    job.resume_token = resume_token;
    if (resume_token != 0)
        resume_tokens_[resume_token] = job.id;
    if (metrics::enabled())
        job.submit_s = metrics::monotonicSeconds();
    if (tenant.live == 0) {
        // Idle -> busy: forfeit banked credit so a long-idle tenant
        // cannot monopolize the fleet on return. (The tenant itself
        // is excluded from the minimum — its live count is still 0.)
        tenant.vtime = std::max(tenant.vtime, minActiveVtimeLocked());
    }
    ++tenant.live;
    ++live_jobs_;
    JobEvent ev;
    ev.type = JobEventType::kAccepted;
    ev.id = job.id;
    job.events.push_back(std::move(ev));
    events_cv_.notify_all();
    enqueueRunnableLocked(job);
    out.id = job.id;
    out.accepted = true;
    return out;
}

bool
SearchService::cancelLocked(Job &job)
{
    if (isTerminal(job.state) || job.cancel_requested)
        return false;
    job.cancel_requested = true;
    if (job.cancel_flag)
        job.cancel_flag->store(true, std::memory_order_relaxed);
    if (!job.stepping) {
        // Not inside a step: cancel takes effect immediately. Remove
        // the queue entry so the tenant is never charged for it.
        Tenant &tenant = tenants_[job.spec.tenant];
        auto &ring = tenant.queues[classIndex(job.spec.job_class)];
        const auto pos =
            std::find(ring.begin(), ring.end(), job.id);
        if (pos != ring.end()) {
            ring.erase(pos);
            requireSim(runnable_ > 0, "runnable-count underflow");
            --runnable_;
        }
        finalizeCancelled(job);
    }
    // else: the stepping thread observes the fired token once the
    // fleet drains its batch and finalizes the job itself.
    return true;
}

bool
SearchService::cancel(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    return cancelLocked(*it->second);
}

void
SearchService::reapParkedLocked()
{
    if (reaping_ || config_.orphan_grace_searches == 0)
        return;
    reaping_ = true;
    for (auto it = parked_jobs_.begin();
         it != parked_jobs_.end();) {
        if (searches_finished_ - it->second
            <= config_.orphan_grace_searches) {
            ++it;
            continue;
        }
        const auto jit = jobs_.find(it->first);
        if (jit == jobs_.end()) {
            it = parked_jobs_.erase(it);
            continue;
        }
        Job &job = *jit->second;
        if (!isTerminal(job.state)) {
            // A still-running orphan past its grace: cancel it. Its
            // retained state is reaped on a later pass, once the
            // cancellation drains to a terminal event.
            cancelLocked(job);
            if (!isTerminal(job.state)) {
                ++it;
                continue;
            }
        }
        if (job.resume_token != 0) {
            const auto tok = resume_tokens_.find(job.resume_token);
            if (tok != resume_tokens_.end()
                && tok->second == job.id)
                resume_tokens_.erase(tok);
        }
        jobs_.erase(jit);
        it = parked_jobs_.erase(it);
        if (metrics::enabled())
            metrics::Registry::instance().add(
                "service.streams_reaped");
    }
    reaping_ = false;
}

JobStatus
SearchService::status(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Job &job = jobRef(id);
    JobStatus st;
    st.state = job.state;
    st.tenant = job.spec.tenant;
    st.platform = job.spec.platform;
    st.job_class = job.spec.job_class;
    st.cancel_requested = job.cancel_requested;
    st.parked = job.parked;
    if (job.driver) {
        st.generations_done = job.driver->generationsDone();
        st.generations_total = job.driver->totalGenerations();
    } else if (job.result) {
        st.generations_total = job.result->ga.history.size();
        st.generations_done = st.generations_total;
    }
    return st;
}

JobEvent
SearchService::waitEvent(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Job &job = jobRef(id);
    events_cv_.wait(lock, [&job] {
        return job.events_delivered < job.events.size();
    });
    // Copy, not pop: the history stays replayable for resume.
    return job.events[job.events_delivered++];
}

std::optional<JobEvent>
SearchService::pollEvent(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job &job = jobRef(id);
    if (job.events_delivered >= job.events.size())
        return std::nullopt;
    return job.events[job.events_delivered++];
}

std::uint64_t
SearchService::attachStream(JobId id,
                            std::uint64_t last_acked_generation)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job &job = jobRef(id);
    job.parked = false;
    parked_jobs_.erase(id);
    ++job.stream_epoch;
    // Rewind the delivery cursor: lifecycle events (kAccepted is
    // acked by the submit/resume reply itself, kStarted is implicit
    // in the first progress frame) and progress the client already
    // processed are skipped; everything past the ack — terminals
    // included — replays.
    std::size_t cursor = 0;
    while (cursor < job.events.size()) {
        const JobEvent &ev = job.events[cursor];
        const bool skippable =
            ev.type == JobEventType::kAccepted
            || ev.type == JobEventType::kStarted
            || (ev.type == JobEventType::kProgress
                && ev.progress.generations_done
                       <= static_cast<std::size_t>(
                           last_acked_generation));
        if (!skippable)
            break;
        ++cursor;
    }
    job.events_delivered = cursor;
    // Wake a superseded stream blocked on this job so it can bail.
    events_cv_.notify_all();
    return job.stream_epoch;
}

JobEvent
SearchService::waitStreamEvent(JobId id, std::uint64_t stream_epoch)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Job &job = jobRef(id);
    events_cv_.wait(lock, [&] {
        return waits_interrupted_
            || job.stream_epoch != stream_epoch
            || job.events_delivered < job.events.size();
    });
    if (waits_interrupted_)
        throwSimulationError("service waits interrupted");
    if (job.stream_epoch != stream_epoch)
        throwSimulationError("stream superseded by a newer attach");
    return job.events[job.events_delivered++];
}

void
SearchService::parkStream(JobId id, std::uint64_t stream_epoch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    Job &job = *it->second;
    // Stale epoch: a newer stream owns the job now; losing the old
    // connection says nothing about the new one.
    if (job.stream_epoch != stream_epoch || job.parked)
        return;
    job.parked = true;
    parked_jobs_[id] = searches_finished_;
    if (metrics::enabled())
        metrics::Registry::instance().add("service.streams_parked");
}

JobId
SearchService::resolveResumeToken(std::uint64_t token) const
{
    if (token == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = resume_tokens_.find(token);
    return it == resume_tokens_.end() ? 0 : it->second;
}

void
SearchService::interruptWaits()
{
    std::lock_guard<std::mutex> lock(mutex_);
    waits_interrupted_ = true;
    events_cv_.notify_all();
}

JobState
SearchService::waitTerminal(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Job &job = jobRef(id);
    events_cv_.wait(lock, [&job] { return isTerminal(job.state); });
    return job.state;
}

std::shared_ptr<const JobResult>
SearchService::result(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Job &job = jobRef(id);
    return job.state == JobState::kCompleted ? job.result : nullptr;
}

bool
SearchService::stepOnce()
{
    std::unique_lock<std::mutex> lock(mutex_);
    Job *job = pickNextLocked();
    if (job == nullptr)
        return false;
    stepJob(lock, *job);
    return true;
}

void
SearchService::drainManual()
{
    while (stepOnce()) {
    }
}

void
SearchService::runnerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock,
                      [this] { return stop_ || runnable_ > 0; });
        if (stop_)
            return;
        Job *job = pickNextLocked();
        if (job == nullptr)
            continue;
        stepJob(lock, *job);
    }
}

} // namespace service
} // namespace emstress
