/**
 * @file
 * SearchService: the multi-tenant virus-search scheduler. Accepts
 * JobSpecs under admission control, queues them per tenant, and
 * interleaves their GA generations over one shared WorkerFleet using
 * weighted-fair queuing — the long-running service the ROADMAP's
 * north star asks for, built directly on the batch-era pieces
 * (GaDriver supplies resumable generation steps, BatchEvaluator
 * evaluates each generation on the fleet, the ArtifactStore serves
 * repeated specs).
 *
 * Scheduling model:
 *  - Admission control: a global in-flight cap and a per-tenant cap;
 *    jobs beyond either are rejected at submit (no unbounded queues).
 *  - Weighted-fair queuing: each tenant carries a virtual time,
 *    advanced by 1/weight per generation stepped. The scheduler
 *    always steps the lowest-virtual-time tenant with runnable work
 *    (ties broken by tenant name for determinism), round-robin over
 *    that tenant's jobs. A tenant going from idle to busy resyncs its
 *    virtual time to the busiest minimum, so idle time banks no
 *    credit.
 *  - The unit of scheduling is one GA generation (one GaDriver
 *    step). Fleet-level parallelism comes from within a generation's
 *    population batch, plus overlap across jobs when multiple runner
 *    threads step different jobs concurrently.
 *
 * Determinism contract: job results are bit-identical to direct
 * GaEngine runs of the same spec, for any fleet width and runner
 * count — GaDriver *is* GaEngine's execution path, evaluation noise
 * is kernel-derived, and each generation's batch writes slot-isolated
 * results merged in index order. Scheduling changes only latency and
 * interleaving, never result bits.
 *
 * Execution modes: `runners` background threads step jobs
 * continuously; with runners = 0 the service steps only when the
 * caller pumps stepOnce()/drainManual(), which makes scheduler
 * decisions single-threaded and exactly reproducible for tests.
 */

#ifndef EMSTRESS_SERVICE_SCHEDULER_H
#define EMSTRESS_SERVICE_SCHEDULER_H

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/artifact_store.h"
#include "service/job.h"
#include "util/worker_fleet.h"

namespace emstress {
namespace service {

/** Service-wide configuration. */
struct ServiceConfig
{
    /// Shared evaluation workers (0 = auto via EMSTRESS_THREADS /
    /// hardware concurrency). Every job's generation batches run on
    /// this one fleet; GaConfig::threads of submitted specs is
    /// ignored.
    std::size_t fleet_threads = 1;
    /// Scheduler threads stepping jobs; 0 = manual mode (the caller
    /// pumps stepOnce(), deterministic for tests).
    std::size_t runners = 1;
    /// Admission: maximum queued + running jobs service-wide.
    std::size_t max_jobs_in_flight = 256;
    /// Admission: maximum queued + running jobs per tenant.
    std::size_t max_jobs_per_tenant = 64;
    /// Fair-share weight of tenants absent from tenant_weights.
    double default_tenant_weight = 1.0;
    /// Per-tenant fair-share weights (higher = more generations per
    /// unit of contention).
    std::map<std::string, double> tenant_weights;
    /// Virtual-time discount of kInteractive generations: an
    /// interactive step charges 1 / (tenant weight * boost), so
    /// interactive-heavy tenants advance their clock slower and get
    /// picked more often. 1.0 makes classes order-only (interactive
    /// still drains ahead of batch within a tenant).
    double interactive_weight_boost = 4.0;
    /// Orphaned-stream grace window, in completed searches: a parked
    /// stream's job survives this many service-wide job completions
    /// before the reaper cancels it (still running) or retires its
    /// retained state (terminal). 0 = park forever (no reaping).
    std::size_t orphan_grace_searches = 64;
    /// Serve repeated specs from the content-addressed store.
    bool use_artifact_store = true;
    ArtifactStore::Config artifacts;
    /// Evaluator construction; null uses makePlatformEvaluator.
    EvaluatorFactory evaluator_factory;
};

/** Outcome of submit(). */
struct Submission
{
    JobId id = 0; ///< 0 when rejected.
    bool accepted = false;
    std::string reject_reason; ///< Set when rejected.
};

/** Point-in-time view of one job. */
struct JobStatus
{
    JobState state = JobState::kQueued;
    std::string tenant;
    PlatformPreset platform = PlatformPreset::kJunoA72;
    JobClass job_class = JobClass::kBatch;
    std::size_t generations_done = 0;
    std::size_t generations_total = 0; ///< 0 until the job started.
    bool cancel_requested = false;
    bool parked = false; ///< Stream orphaned, awaiting resume/reap.
};

/**
 * The scheduler. Thread-safe: submit/cancel/status/event calls may
 * come from any number of transport threads.
 */
class SearchService
{
  public:
    explicit SearchService(ServiceConfig config);

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /** Stops the runners; jobs still queued stay unfinished. */
    ~SearchService();

    /**
     * Admit a job. Rejections (capacity, invalid spec) are reported
     * in the Submission, not thrown. An accepted job has already
     * emitted its kAccepted event; a spec whose fingerprint hits the
     * artifact store completes instantly without occupying a slot.
     * A nonzero resume_token registers the job for kResume
     * re-attachment after a dropped stream (latest registration of a
     * token wins).
     */
    Submission submit(const JobSpec &spec,
                      std::uint64_t resume_token = 0);

    /**
     * Request cancellation. True when the job existed and was not
     * yet terminal: queued jobs cancel immediately, running jobs
     * drain their in-flight generation (skipped evaluations are
     * never scored or cached — BatchEvaluator guarantee 5) and then
     * report kCancelled.
     */
    bool cancel(JobId id);

    /** Status of a job. @throws ConfigError for an unknown id. */
    JobStatus status(JobId id) const;

    /**
     * Deliver the job's next undelivered event, blocking until one
     * is available. Terminal events (kCompleted/kCancelled/kFailed)
     * are the last a job ever emits. Events are retained after
     * delivery (the delivery cursor advances, the deque does not
     * shrink) so a resumed stream can replay them.
     * @throws ConfigError for an unknown id.
     */
    JobEvent waitEvent(JobId id);

    /** Deliver the job's next event if one is pending. */
    std::optional<JobEvent> pollEvent(JobId id);

    /// @{ Streaming re-attachment (the socket transport's resume
    /// machinery; in-process callers never need these).

    /**
     * Attach the calling stream to a job: unparks it, bumps its
     * stream epoch (superseding any previous stream blocked in
     * waitStreamEvent) and rewinds the delivery cursor so that
     * replay skips lifecycle events and progress the client already
     * acknowledged (generations_done <= last_acked_generation) but
     * repeats everything after, terminals included. Returns the new
     * stream epoch. @throws ConfigError for an unknown id.
     */
    std::uint64_t attachStream(JobId id,
                               std::uint64_t last_acked_generation);

    /**
     * waitEvent for an attached stream. @throws SimulationError when
     * a newer attachStream supersedes this stream or interruptWaits
     * fires — the caller's connection is no longer the job's stream.
     */
    JobEvent waitStreamEvent(JobId id, std::uint64_t stream_epoch);

    /**
     * Mark the job's stream orphaned (its connection died). A parked
     * job keeps running and retains its events for the grace window
     * (ServiceConfig::orphan_grace_searches); a kResume re-attaches
     * it. No-op when stream_epoch is stale (a newer stream owns the
     * job) or the id is unknown.
     */
    void parkStream(JobId id, std::uint64_t stream_epoch);

    /** Job registered under a resume token; 0 when unknown. */
    JobId resolveResumeToken(std::uint64_t token) const;

    /** Wake every blocked waitStreamEvent with an error (server
     *  shutdown path, so connection threads can be joined). */
    void interruptWaits();
    /// @}

    /**
     * Block until the job is terminal (does not consume events).
     * Returns the terminal state.
     */
    JobState waitTerminal(JobId id);

    /** A completed job's result; null unless state is kCompleted. */
    std::shared_ptr<const JobResult> result(JobId id) const;

    /**
     * Step one generation of the next schedulable job on the calling
     * thread (the manual-mode pump; also usable alongside runners).
     * False when nothing was runnable.
     */
    bool stepOnce();

    /** Pump stepOnce() until no job is runnable (manual mode). */
    void drainManual();

    /** The shared artifact store. */
    ArtifactStore &artifacts() { return store_; }

    /** The shared evaluation fleet. */
    WorkerFleet &fleet() { return fleet_; }

    /** Resolved configuration. */
    const ServiceConfig &config() const { return config_; }

  private:
    /**
     * Everything the service knows about one job. Mutable scheduling
     * state carries `// guards: mutex_` so emstress-lint R7 proves
     * every touch happens under the service-wide lock. `driver` and
     * `evaluator` are deliberately unannotated: ownership of a
     * stepped job is claimed via `stepping`, so exactly one thread
     * dereferences them outside the lock (see stepJob()).
     */
    struct Job
    {
        JobId id = 0;
        JobSpec spec;
        std::uint64_t fingerprint = 0;      // guards: mutex_
        JobState state = JobState::kQueued; // guards: mutex_
        bool cancel_requested = false;      // guards: mutex_
        /// A thread is inside driver->step(). guards: mutex_
        bool stepping = false;
        std::shared_ptr<std::atomic<bool>> cancel_flag;
        std::unique_ptr<ga::FitnessEvaluator> evaluator;
        std::unique_ptr<ga::GaDriver> driver;
        /// Full retained event history (never popped; replayable).
        std::deque<JobEvent> events; // guards: mutex_
        /// Delivery cursor into events. guards: mutex_
        std::size_t events_delivered = 0;
        std::shared_ptr<const JobResult> result; // guards: mutex_
        /// Client-generated resume token (0 = none). guards: mutex_
        std::uint64_t resume_token = 0;
        /// Bumped per attachStream; stale streams are superseded.
        /// guards: mutex_
        std::uint64_t stream_epoch = 0;
        /// Stream orphaned (connection died). guards: mutex_
        bool parked = false;
        /// Monotonic submit time (metrics). guards: mutex_
        double submit_s = 0.0;
        bool first_step_recorded = false; // guards: mutex_
    };

    /** Per-tenant fair-queuing state (all of it under mutex_). */
    struct Tenant
    {
        double weight = 1.0; // guards: mutex_
        /// Virtual time consumed. guards: mutex_
        double vtime = 0.0;
        /// Round-robin runnable jobs, one ring per priority class;
        /// kInteractive drains ahead of kBatch. guards: mutex_
        std::array<std::deque<JobId>, kJobClassCount> queues;
        /// Queued + running jobs. guards: mutex_
        std::size_t live = 0;
    };

    Job &jobRef(JobId id);
    const Job &jobRef(JobId id) const;

    /** Smallest virtual time among tenants with live jobs. */
    double minActiveVtimeLocked() const;

    /** Enqueue a job as runnable on its tenant. */
    void enqueueRunnableLocked(Job &job);

    /** Pick and claim the next job to step; null when none. */
    Job *pickNextLocked();

    /**
     * Step one generation of a claimed job. Called with the lock
     * held and job.stepping set; drops the lock around evaluation.
     */
    void stepJob(std::unique_lock<std::mutex> &lock, Job &job);

    /// @{ Terminal transitions (lock held).
    void finalizeCompleted(Job &job);
    void finalizeCancelled(Job &job);
    void finalizeFailed(Job &job, const std::string &error);
    void finalizeCommon(Job &job, JobEvent event);
    /// @}

    /** Request cancellation of a job (lock held); the body of
     *  cancel() and the reaper's expiry action. */
    bool cancelLocked(Job &job);

    /**
     * Reap parked streams whose grace window lapsed: cancel the ones
     * still running, erase the terminal ones (events, result, token
     * registration). Runs after every completed search (lock held).
     */
    void reapParkedLocked();

    void runnerLoop();

    ServiceConfig config_;
    ArtifactStore store_;
    WorkerFleet fleet_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;   ///< Runnable work appeared.
    std::condition_variable events_cv_; ///< Job events/state changed.
    std::unordered_map<JobId, std::unique_ptr<Job>> jobs_; // guards: mutex_
    /// std::map: scheduler decisions iterate tenants, and iteration
    /// order must be deterministic (and lint-clean). guards: mutex_
    std::map<std::string, Tenant> tenants_;
    /// Resume-token registry (ordered for deterministic reaping).
    /// guards: mutex_
    std::map<std::uint64_t, JobId> resume_tokens_;
    /// Parked job -> searches_finished_ at park time (the grace
    /// clock; ordered so the reaper visits deterministically).
    /// guards: mutex_
    std::map<JobId, std::size_t> parked_jobs_;
    JobId next_id_ = 1;          // guards: mutex_
    std::size_t live_jobs_ = 0;  // guards: mutex_
    std::size_t runnable_ = 0;   // guards: mutex_
    /// Service-wide terminal transitions (the reaper's clock).
    /// guards: mutex_
    std::size_t searches_finished_ = 0;
    bool reaping_ = false;       // guards: mutex_ (reentrancy guard)
    bool waits_interrupted_ = false; // guards: mutex_
    bool stop_ = false;          // guards: mutex_

    std::vector<std::thread> runners_;
};

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_SCHEDULER_H
