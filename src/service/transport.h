/**
 * @file
 * Client-side transport abstraction of the search service, with the
 * in-process implementation.
 *
 * A Transport is how a client talks to a SearchService: submit a
 * spec, stream the job's events, request cancellation. Two
 * implementations exist:
 *
 *  - InProcessTransport (here): wraps a SearchService in the same
 *    process. Every spec and every result still round-trips through
 *    the wire codec (encode then decode), so tests that compare an
 *    in-process job against a direct GaEngine run are also pinning
 *    the codec's bit-exactness — a socket adds I/O, never different
 *    bytes.
 *  - SocketClient (transport_socket.h): the same operations over the
 *    length-prefixed TCP protocol against an emstressd server.
 */

#ifndef EMSTRESS_SERVICE_TRANSPORT_H
#define EMSTRESS_SERVICE_TRANSPORT_H

#include <mutex>
#include <unordered_map>

#include "service/job.h"
#include "service/scheduler.h"

namespace emstress {
namespace service {

/** Client-side view of a search service. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Submit a job; rejection is reported, not thrown. */
    virtual Submission submit(const JobSpec &spec) = 0;

    /**
     * Pop the job's next event, blocking until one arrives. Terminal
     * events (kCompleted/kCancelled/kFailed) end the stream.
     */
    virtual JobEvent nextEvent(JobId id) = 0;

    /** Request cancellation; true when the job was still live. */
    virtual bool cancel(JobId id) = 0;

    /**
     * Convenience: drain the event stream until the terminal event
     * and return it.
     */
    JobEvent
    awaitTerminal(JobId id)
    {
        for (;;) {
            JobEvent ev = nextEvent(id);
            if (ev.type == JobEventType::kCompleted
                || ev.type == JobEventType::kCancelled
                || ev.type == JobEventType::kFailed)
                return ev;
        }
    }
};

/**
 * In-process transport over a caller-owned SearchService. Specs,
 * progress payloads and results are passed through the wire codec
 * both ways, making this transport byte-equivalent to the socket one
 * minus the socket.
 */
class InProcessTransport : public Transport
{
  public:
    /** @param service Backing service; must outlive the transport. */
    explicit InProcessTransport(SearchService &service)
        : service_(service)
    {}

    Submission submit(const JobSpec &spec) override;
    JobEvent nextEvent(JobId id) override;
    bool cancel(JobId id) override;

  private:
    SearchService &service_;
    /// Platform preset per submitted job: result kernels decode
    /// against the job's instruction pool.
    std::mutex mutex_;
    std::unordered_map<JobId, PlatformPreset> presets_; // guards: mutex_
};

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_TRANSPORT_H
