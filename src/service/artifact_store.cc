/**
 * @file
 * ArtifactStore implementation: the in-memory index plus the
 * persistent spill tier.
 *
 * Disk layout under Config::spill_dir:
 *   <fp16>.artifact   wire-encoded JobResult body (encodeJobResult)
 *   <fp16>.meta       text sidecar, schema emstress-artifact-v1:
 *                       emstress-artifact-v1
 *                       fingerprint <16 lowercase hex digits>
 *                       epoch <last-used logical epoch>
 *                       preset <a72|a53|athlon>
 *                       payload_bytes <artifact file size>
 *   quarantine/       corrupt/truncated pairs moved aside, kept for
 *                     post-mortems, never re-indexed
 *
 * Write protocol: payload first, sidecar last, each via temp file +
 * rename — a crash between the two leaves an orphan payload the next
 * scan ignores, never a sidecar pointing at torn bytes. Every
 * filesystem call uses the non-throwing error_code overloads (or
 * stream states): disk trouble increments a counter and degrades to a
 * miss, it never propagates into the scheduler.
 */

#include "service/artifact_store.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "service/wire.h"
#include "util/metrics.h"

namespace fs = std::filesystem;

namespace emstress {
namespace service {

namespace {

constexpr const char *kSpillSchema = "emstress-artifact-v1";

/** 16-lowercase-hex content-address stem of a fingerprint. */
std::string
fingerprintStem(std::uint64_t fingerprint)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = digits[fingerprint & 0xF];
        fingerprint >>= 4;
    }
    return s;
}

/** Parsed .meta sidecar. */
struct MetaInfo
{
    std::uint64_t fingerprint = 0;
    std::size_t epoch = 0;
    PlatformPreset preset = PlatformPreset::kJunoA72;
    std::uint64_t payload_bytes = 0;
};

/** Parse a sidecar; false on any schema or field violation. */
bool
parseMeta(const fs::path &path, MetaInfo &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != kSpillSchema)
        return false;
    bool have_fp = false, have_epoch = false, have_preset = false,
         have_bytes = false;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string key;
        if (!(fields >> key))
            continue;
        if (key == "fingerprint") {
            std::string hex;
            if (!(fields >> hex) || hex.size() != 16)
                return false;
            std::uint64_t v = 0;
            for (const char c : hex) {
                v <<= 4;
                if (c >= '0' && c <= '9')
                    v |= static_cast<std::uint64_t>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    v |= static_cast<std::uint64_t>(c - 'a' + 10);
                else
                    return false;
            }
            out.fingerprint = v;
            have_fp = true;
        } else if (key == "epoch") {
            std::uint64_t v = 0;
            if (!(fields >> v))
                return false;
            out.epoch = static_cast<std::size_t>(v);
            have_epoch = true;
        } else if (key == "preset") {
            std::string name;
            if (!(fields >> name)
                || !presetFromName(name, out.preset))
                return false;
            have_preset = true;
        } else if (key == "payload_bytes") {
            if (!(fields >> out.payload_bytes))
                return false;
            have_bytes = true;
        }
        // Unknown keys are ignored: future schema minors may append.
    }
    return have_fp && have_epoch && have_preset && have_bytes;
}

/** Atomically replace `dest` with `bytes` (temp file + rename). */
bool
atomicWrite(const fs::path &dest, const void *bytes, std::size_t n)
{
    const fs::path tmp = dest.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(static_cast<const char *>(bytes),
                  static_cast<std::streamsize>(n));
        if (!out)
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, dest, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

/** Wire-encode a result against its preset's pool. */
std::vector<std::uint8_t>
encodePayload(const JobResult &result, PlatformPreset preset)
{
    WireWriter w;
    encodeJobResult(w, result, presetPool(preset));
    return w.bytes();
}

} // namespace

ArtifactStore::ArtifactStore(Config config)
    : config_(std::move(config))
{
    if (!config_.spill_dir.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        scanSpillDirLocked();
    }
}

void
ArtifactStore::noteCounter(const char *name, std::uint64_t delta)
{
    if (metrics::enabled())
        metrics::Registry::instance().add(name, delta);
}

void
ArtifactStore::scanSpillDirLocked()
{
    std::error_code ec;
    fs::create_directories(config_.spill_dir, ec);
    fs::create_directories(fs::path(config_.spill_dir) / "quarantine",
                           ec);

    // directory_iterator order is unspecified; collect and sort so
    // scan effects (epoch resolution, quarantine moves) replay
    // identically across runs. lint: ordered-merge
    std::vector<fs::path> sidecars;
    for (fs::directory_iterator it(config_.spill_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->path().extension() == ".meta")
            sidecars.push_back(it->path());
    }
    std::sort(sidecars.begin(), sidecars.end());

    for (const fs::path &meta_path : sidecars) {
        MetaInfo meta;
        const std::string stem = meta_path.stem().string();
        bool ok = parseMeta(meta_path, meta);
        if (ok && fingerprintStem(meta.fingerprint) != stem)
            ok = false; // sidecar lies about its own address
        if (ok) {
            const fs::path payload =
                fs::path(config_.spill_dir) / (stem + ".artifact");
            std::error_code sec;
            const std::uintmax_t bytes =
                fs::file_size(payload, sec);
            if (sec || bytes != meta.payload_bytes)
                ok = false; // torn or missing payload
        }
        if (!ok) {
            // Quarantine by stem: moves the sidecar and whatever
            // payload shares its name.
            std::uint64_t fp = 0;
            for (const char c : stem) {
                fp <<= 4;
                if (c >= '0' && c <= '9')
                    fp |= static_cast<std::uint64_t>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    fp |= static_cast<std::uint64_t>(c - 'a' + 10);
            }
            quarantineLocked(fp);
            continue;
        }
        Entry entry;
        entry.last_used = meta.epoch;
        entry.preset = meta.preset;
        entry.on_disk = true;
        entries_[meta.fingerprint] = std::move(entry);
        epoch_ = std::max(epoch_, meta.epoch);
        ++stats_.spill_indexed;
        noteCounter("service.store.spill_indexed");
    }
}

bool
ArtifactStore::spillLocked(std::uint64_t fingerprint,
                           const Entry &entry)
{
    const std::string stem = fingerprintStem(fingerprint);
    const fs::path root(config_.spill_dir);
    const std::vector<std::uint8_t> payload =
        encodePayload(*entry.artifact, entry.preset);
    if (!atomicWrite(root / (stem + ".artifact"), payload.data(),
                     payload.size())) {
        ++stats_.spill_errors;
        noteCounter("service.store.spill_errors");
        return false;
    }
    std::ostringstream meta;
    meta << kSpillSchema << '\n'
         << "fingerprint " << stem << '\n'
         << "epoch " << entry.last_used << '\n'
         << "preset " << presetName(entry.preset) << '\n'
         << "payload_bytes " << payload.size() << '\n';
    const std::string text = meta.str();
    if (!atomicWrite(root / (stem + ".meta"), text.data(),
                     text.size())) {
        ++stats_.spill_errors;
        noteCounter("service.store.spill_errors");
        return false;
    }
    ++stats_.spill_writes;
    noteCounter("service.store.spill_writes");
    return true;
}

std::shared_ptr<const JobResult>
ArtifactStore::loadSpillLocked(std::uint64_t fingerprint,
                               Entry &entry)
{
    const fs::path payload_path =
        fs::path(config_.spill_dir)
        / (fingerprintStem(fingerprint) + ".artifact");
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(payload_path,
                         std::ios::binary | std::ios::ate);
        if (!in) {
            quarantineLocked(fingerprint);
            return nullptr;
        }
        const std::streamsize n = in.tellg();
        in.seekg(0);
        bytes.resize(static_cast<std::size_t>(std::max<std::streamsize>(
            n, 0)));
        if (!bytes.empty()
            && !in.read(reinterpret_cast<char *>(bytes.data()),
                        static_cast<std::streamsize>(bytes.size()))) {
            quarantineLocked(fingerprint);
            return nullptr;
        }
    }
    try {
        WireReader r(bytes);
        auto result = std::make_shared<JobResult>(
            decodeJobResult(r, presetPool(entry.preset)));
        r.expectEnd();
        return result;
    } catch (const std::exception &) {
        // Truncated or bit-rotted payload: out of the serving path,
        // kept for inspection, reported as a miss.
        quarantineLocked(fingerprint);
        return nullptr;
    }
}

void
ArtifactStore::rewriteMetaLocked(std::uint64_t fingerprint,
                                 const Entry &entry)
{
    const std::string stem = fingerprintStem(fingerprint);
    const fs::path root(config_.spill_dir);
    std::error_code ec;
    const std::uintmax_t bytes =
        fs::file_size(root / (stem + ".artifact"), ec);
    if (ec) {
        ++stats_.spill_errors;
        noteCounter("service.store.spill_errors");
        return;
    }
    std::ostringstream meta;
    meta << kSpillSchema << '\n'
         << "fingerprint " << stem << '\n'
         << "epoch " << entry.last_used << '\n'
         << "preset " << presetName(entry.preset) << '\n'
         << "payload_bytes " << bytes << '\n';
    const std::string text = meta.str();
    if (!atomicWrite(root / (stem + ".meta"), text.data(),
                     text.size())) {
        ++stats_.spill_errors;
        noteCounter("service.store.spill_errors");
    }
}

void
ArtifactStore::quarantineLocked(std::uint64_t fingerprint)
{
    const std::string stem = fingerprintStem(fingerprint);
    const fs::path root(config_.spill_dir);
    const fs::path qdir = root / "quarantine";
    std::error_code ec;
    fs::create_directories(qdir, ec);
    bool moved = false;
    for (const char *ext : {".artifact", ".meta"}) {
        const fs::path src = root / (stem + ext);
        if (!fs::exists(src, ec))
            continue;
        fs::rename(src, qdir / (stem + ext), ec);
        if (ec) {
            fs::remove(src, ec); // last resort: out of the index
            ++stats_.spill_errors;
            noteCounter("service.store.spill_errors");
        }
        moved = true;
    }
    if (moved) {
        ++stats_.spill_quarantined;
        noteCounter("service.store.spill_quarantined");
    }
}

void
ArtifactStore::removeSpillLocked(std::uint64_t fingerprint)
{
    const std::string stem = fingerprintStem(fingerprint);
    const fs::path root(config_.spill_dir);
    std::error_code ec;
    for (const char *ext : {".artifact", ".meta"}) {
        fs::remove(root / (stem + ext), ec);
        if (ec) {
            ++stats_.spill_errors;
            noteCounter("service.store.spill_errors");
        }
    }
}

std::shared_ptr<const JobResult>
ArtifactStore::fetch(std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(fingerprint);
    if (it == entries_.end()) {
        ++stats_.misses;
        noteCounter("service.store.misses");
        return nullptr;
    }
    Entry &entry = it->second;
    if (!entry.artifact) {
        // Disk-indexed, not resident: the lazy-load path a restarted
        // daemon takes the first time each spilled spec repeats.
        auto loaded = loadSpillLocked(fingerprint, entry);
        if (!loaded) {
            entries_.erase(it);
            ++stats_.misses;
            noteCounter("service.store.misses");
            return nullptr;
        }
        entry.artifact = std::move(loaded);
        ++stats_.disk_hits;
        noteCounter("service.store.disk_hits");
    }
    if (entry.last_used != epoch_) {
        entry.last_used = epoch_;
        // Persist the refresh so LRU age survives a restart.
        if (entry.on_disk)
            rewriteMetaLocked(fingerprint, entry);
    }
    ++stats_.hits;
    noteCounter("service.store.hits");
    return entry.artifact;
}

void
ArtifactStore::insert(std::uint64_t fingerprint,
                      std::shared_ptr<const JobResult> artifact,
                      PlatformPreset preset)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(fingerprint);
    const bool replacing = it != entries_.end();
#ifndef NDEBUG
    // The fingerprint covers every result-defining field, so two
    // completions of one address must carry the same bytes; anything
    // else is a determinism bug upstream.
    if (replacing && it->second.artifact && artifact) {
        assert(encodePayload(*it->second.artifact, it->second.preset)
                   == encodePayload(*artifact, preset)
               && "artifact replacement changed payload bytes");
    }
#endif
    Entry &entry = replacing ? it->second : entries_[fingerprint];
    entry.artifact = std::move(artifact);
    entry.last_used = epoch_;
    entry.preset = preset;
    if (replacing) {
        ++stats_.replacements;
        noteCounter("service.store.replacements");
    } else {
        ++stats_.inserts;
        noteCounter("service.store.inserts");
    }
    if (!config_.spill_dir.empty())
        entry.on_disk = spillLocked(fingerprint, entry);
}

bool
ArtifactStore::invalidate(std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(fingerprint);
    if (it == entries_.end())
        return false;
    if (it->second.on_disk)
        removeSpillLocked(fingerprint);
    entries_.erase(it);
    ++stats_.invalidations;
    noteCounter("service.store.invalidations");
    return true;
}

void
ArtifactStore::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[fingerprint, entry] : entries_) {
        if (entry.on_disk)
            removeSpillLocked(fingerprint);
    }
    stats_.invalidations += entries_.size();
    noteCounter("service.store.invalidations", entries_.size());
    entries_.clear();
}

void
ArtifactStore::advanceEpoch()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++epoch_;
    if (config_.ttl_epochs == 0)
        return;
    // Order-independent: every entry is visited and evicted (or not)
    // purely on its own last_used age. An entry last used at epoch E
    // is evicted on the advance to E + ttl_epochs — "survives
    // ttl_epochs - 1 idle advances", matching the header contract.
    // lint: ordered-merge
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (epoch_ - it->second.last_used >= config_.ttl_epochs) {
            if (it->second.on_disk)
                removeSpillLocked(it->first);
            it = entries_.erase(it);
            ++stats_.expirations;
            noteCounter("service.store.expirations");
        } else {
            ++it;
        }
    }
}

std::size_t
ArtifactStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

bool
ArtifactStore::resident(std::uint64_t fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(fingerprint);
    return it != entries_.end() && it->second.artifact != nullptr;
}

std::size_t
ArtifactStore::epoch() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
}

ArtifactStore::Stats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace service
} // namespace emstress
