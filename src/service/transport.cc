/**
 * @file
 * In-process transport: same service, same codec, no socket.
 */

#include "service/transport.h"

#include "service/wire.h"

namespace emstress {
namespace service {

namespace {

/** Encode-then-decode a spec, as the socket path would. */
JobSpec
roundTripSpec(const JobSpec &spec)
{
    WireWriter w;
    encodeJobSpec(w, spec);
    WireReader r(w.bytes());
    JobSpec out = decodeJobSpec(r);
    r.expectEnd();
    return out;
}

JobProgress
roundTripProgress(const JobProgress &progress)
{
    WireWriter w;
    encodeProgress(w, progress);
    WireReader r(w.bytes());
    JobProgress out = decodeProgress(r);
    r.expectEnd();
    return out;
}

JobResult
roundTripResult(const JobResult &result,
                const isa::InstructionPool &pool)
{
    WireWriter w;
    encodeJobResult(w, result, pool);
    WireReader r(w.bytes());
    JobResult out = decodeJobResult(r, pool);
    r.expectEnd();
    return out;
}

} // namespace

Submission
InProcessTransport::submit(const JobSpec &spec)
{
    const JobSpec decoded = roundTripSpec(spec);
    Submission sub = service_.submit(decoded);
    if (sub.accepted) {
        std::lock_guard<std::mutex> lock(mutex_);
        presets_.emplace(sub.id, decoded.platform);
    }
    return sub;
}

JobEvent
InProcessTransport::nextEvent(JobId id)
{
    JobEvent ev = service_.waitEvent(id);
    if (ev.type == JobEventType::kProgress) {
        ev.progress = roundTripProgress(ev.progress);
    } else if (ev.type == JobEventType::kCompleted && ev.result) {
        PlatformPreset preset = PlatformPreset::kJunoA72;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = presets_.find(id);
            if (it != presets_.end())
                preset = it->second;
        }
        ev.result = std::make_shared<const JobResult>(
            roundTripResult(*ev.result, presetPool(preset)));
    }
    return ev;
}

bool
InProcessTransport::cancel(JobId id)
{
    return service_.cancel(id);
}

} // namespace service
} // namespace emstress
