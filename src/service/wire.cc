/**
 * @file
 * Body codecs of the wire protocol. Every field of a JobSpec that can
 * change a search result crosses the wire, and every field of a
 * JobResult crosses back — doubles as IEEE-754 bit patterns — so a
 * client-side decode is bit-identical to the server-side value.
 */

#include "service/wire.h"

#include "isa/kernel.h"

namespace emstress {
namespace service {

std::vector<std::uint8_t>
buildFrame(MsgType type, const WireWriter &body)
{
    const std::vector<std::uint8_t> &b = body.bytes();
    if (b.size() + 1 > kMaxFrameBytes)
        throw ProtocolError("frame body too large");
    const std::uint32_t len = static_cast<std::uint32_t>(b.size() + 1);
    std::vector<std::uint8_t> frame;
    frame.reserve(4 + len);
    for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    frame.push_back(static_cast<std::uint8_t>(type));
    frame.insert(frame.end(), b.begin(), b.end());
    return frame;
}

MsgType
msgTypeFromWire(std::uint8_t raw)
{
    switch (raw) {
    case 0x01: return MsgType::kPing;
    case 0x02: return MsgType::kSubmit;
    case 0x03: return MsgType::kCancel;
    case 0x04: return MsgType::kMetrics;
    case 0x05: return MsgType::kShutdown;
    case 0x06: return MsgType::kResume;
    case 0x81: return MsgType::kPong;
    case 0x82: return MsgType::kAccepted;
    case 0x83: return MsgType::kProgress;
    case 0x84: return MsgType::kCompleted;
    case 0x85: return MsgType::kCancelled;
    case 0x86: return MsgType::kFailed;
    case 0x87: return MsgType::kAck;
    case 0x88: return MsgType::kMetricsReply;
    case 0x89: return MsgType::kResumed;
    case 0xFF: return MsgType::kError;
    default: throw ProtocolError("unknown message type byte");
    }
}

namespace {

PlatformPreset
presetFromWire(std::uint8_t v)
{
    switch (v) {
    case 0: return PlatformPreset::kJunoA72;
    case 1: return PlatformPreset::kJunoA53;
    case 2: return PlatformPreset::kAthlon;
    default: throw ProtocolError("unknown platform preset on wire");
    }
}

JobMode
modeFromWire(std::uint8_t v)
{
    switch (v) {
    case 0: return JobMode::kPassiveVirus;
    case 1: return JobMode::kActiveEmfi;
    default: throw ProtocolError("unknown job mode on wire");
    }
}

core::VirusMetric
metricFromWire(std::uint8_t v)
{
    switch (v) {
    case 0: return core::VirusMetric::EmAmplitude;
    case 1: return core::VirusMetric::MaxDroop;
    case 2: return core::VirusMetric::PeakToPeak;
    default: throw ProtocolError("unknown virus metric on wire");
    }
}

JobClass
jobClassFromWire(std::uint8_t v)
{
    switch (v) {
    case 0: return JobClass::kBatch;
    case 1: return JobClass::kInteractive;
    default: throw ProtocolError("unknown job class on wire");
    }
}

void
encodeEvalDetail(WireWriter &w, const ga::EvalDetail &d)
{
    w.f64(d.dominant_freq_hz);
    w.f64(d.metric_raw);
    w.f64(d.measurement_seconds);
    w.u64(d.samples_materialized);
}

ga::EvalDetail
decodeEvalDetail(WireReader &r)
{
    ga::EvalDetail d;
    d.dominant_freq_hz = r.f64();
    d.metric_raw = r.f64();
    d.measurement_seconds = r.f64();
    d.samples_materialized =
        static_cast<std::size_t>(r.u64());
    return d;
}

void
encodeEvalStats(WireWriter &w, const ga::EvalStats &s)
{
    w.u64(s.evals);
    w.u64(s.cache_hits);
    w.u64(s.elites_reused);
    w.u64(s.threads);
    w.f64(s.eval_seconds);
    w.f64(s.wall_seconds);
    w.u64(s.samples_materialized);
    w.u64(s.faults_injected);
    w.u64(s.retries);
    w.u64(s.permanent_failures);
    w.f64(s.fault_backoff_seconds);
    w.u64(s.tasks_cancelled);
}

ga::EvalStats
decodeEvalStats(WireReader &r)
{
    ga::EvalStats s;
    s.evals = static_cast<std::size_t>(r.u64());
    s.cache_hits = static_cast<std::size_t>(r.u64());
    s.elites_reused = static_cast<std::size_t>(r.u64());
    s.threads = static_cast<std::size_t>(r.u64());
    s.eval_seconds = r.f64();
    s.wall_seconds = r.f64();
    s.samples_materialized = static_cast<std::size_t>(r.u64());
    s.faults_injected = static_cast<std::size_t>(r.u64());
    s.retries = static_cast<std::size_t>(r.u64());
    s.permanent_failures = static_cast<std::size_t>(r.u64());
    s.fault_backoff_seconds = r.f64();
    s.tasks_cancelled = static_cast<std::size_t>(r.u64());
    return s;
}

} // namespace

void
encodeJobSpec(WireWriter &w, const JobSpec &spec)
{
    w.str(spec.tenant);
    w.u8(static_cast<std::uint8_t>(spec.platform));
    w.u64(spec.platform_seed);
    w.u8(static_cast<std::uint8_t>(spec.metric));

    const ga::GaConfig &g = spec.ga;
    w.u64(g.population);
    w.u64(g.generations);
    w.u64(g.kernel_length);
    w.f64(g.mutation_rate);
    w.f64(g.operand_mutation_ratio);
    w.u64(g.tournament_k);
    w.u64(g.elite);
    w.u64(g.seed);
    w.u64(g.restarts);
    w.u64(g.threads);
    w.u8(g.memoize ? 1 : 0);
    w.u32(g.retry.max_attempts);
    w.f64(g.retry.backoff_s);
    w.f64(g.retry.backoff_factor);
    w.f64(g.retry.backoff_cap_s);

    const core::EvalSettings &e = spec.eval;
    w.f64(e.duration_s);
    w.f64(e.f_lo_hz);
    w.f64(e.f_hi_hz);
    w.u64(e.sa_samples);
    w.u64(e.active_cores);
    w.u8(e.streaming ? 1 : 0);

    w.u8(static_cast<std::uint8_t>(spec.mode));
    const EmfiJobSpec &fi = spec.emfi;
    w.u64(fi.victim_seed);
    w.u64(fi.victim_length);
    w.u64(fi.target_slot);
    w.u64(fi.schedule_seed);
    w.f64(fi.t0_max_s);
    w.f64(fi.amplitude_max_a);

    // Scheduling identity (version 2), appended last so the
    // result-defining prefix of the body stays byte-stable across
    // protocol versions. Like the tenant, neither field is part of
    // the content fingerprint: they change job *latency*, never job
    // *results*.
    w.u8(static_cast<std::uint8_t>(spec.job_class));
    w.f64(spec.deadline_s);
}

JobSpec
decodeJobSpec(WireReader &r)
{
    JobSpec spec;
    spec.tenant = r.str();
    spec.platform = presetFromWire(r.u8());
    spec.platform_seed = r.u64();
    spec.metric = metricFromWire(r.u8());

    ga::GaConfig &g = spec.ga;
    g.population = static_cast<std::size_t>(r.u64());
    g.generations = static_cast<std::size_t>(r.u64());
    g.kernel_length = static_cast<std::size_t>(r.u64());
    g.mutation_rate = r.f64();
    g.operand_mutation_ratio = r.f64();
    g.tournament_k = static_cast<std::size_t>(r.u64());
    g.elite = static_cast<std::size_t>(r.u64());
    g.seed = r.u64();
    g.restarts = static_cast<std::size_t>(r.u64());
    g.threads = static_cast<std::size_t>(r.u64());
    g.memoize = r.u8() != 0;
    g.retry.max_attempts = r.u32();
    g.retry.backoff_s = r.f64();
    g.retry.backoff_factor = r.f64();
    g.retry.backoff_cap_s = r.f64();

    core::EvalSettings &e = spec.eval;
    e.duration_s = r.f64();
    e.f_lo_hz = r.f64();
    e.f_hi_hz = r.f64();
    e.sa_samples = static_cast<std::size_t>(r.u64());
    e.active_cores = static_cast<std::size_t>(r.u64());
    e.streaming = r.u8() != 0;

    spec.mode = modeFromWire(r.u8());
    EmfiJobSpec &fi = spec.emfi;
    fi.victim_seed = r.u64();
    fi.victim_length = static_cast<std::size_t>(r.u64());
    fi.target_slot = static_cast<std::size_t>(r.u64());
    fi.schedule_seed = r.u64();
    fi.t0_max_s = r.f64();
    fi.amplitude_max_a = r.f64();

    spec.job_class = jobClassFromWire(r.u8());
    spec.deadline_s = r.f64();
    return spec;
}

void
encodeResumeRequest(WireWriter &w, const ResumeRequest &req)
{
    w.u64(req.token);
    w.u64(req.last_acked_generation);
}

ResumeRequest
decodeResumeRequest(WireReader &r)
{
    ResumeRequest req;
    req.token = r.u64();
    req.last_acked_generation = r.u64();
    return req;
}

void
encodeResumeReply(WireWriter &w, const ResumeReply &reply)
{
    w.u64(reply.id);
    w.u8(static_cast<std::uint8_t>(reply.platform));
    w.u64(reply.generations_done);
}

ResumeReply
decodeResumeReply(WireReader &r)
{
    ResumeReply reply;
    reply.id = r.u64();
    reply.platform = presetFromWire(r.u8());
    reply.generations_done = r.u64();
    return reply;
}

void
encodeProgress(WireWriter &w, const JobProgress &p)
{
    w.u64(p.generation);
    w.u64(p.generations_done);
    w.u64(p.generations_total);
    w.f64(p.best_fitness);
    w.f64(p.mean_fitness);
    w.f64(p.dominant_freq_hz);
}

JobProgress
decodeProgress(WireReader &r)
{
    JobProgress p;
    p.generation = static_cast<std::size_t>(r.u64());
    p.generations_done = static_cast<std::size_t>(r.u64());
    p.generations_total = static_cast<std::size_t>(r.u64());
    p.best_fitness = r.f64();
    p.mean_fitness = r.f64();
    p.dominant_freq_hz = r.f64();
    return p;
}

void
encodeJobResult(WireWriter &w, const JobResult &result,
                const isa::InstructionPool &pool)
{
    w.str(result.metric);
    w.u8(result.from_artifact_store ? 1 : 0);
    w.u64(result.fingerprint);

    const ga::GaResult &g = result.ga;
    w.str(g.best.serialize(pool));
    w.f64(g.best_fitness);
    encodeEvalDetail(w, g.best_detail);
    w.f64(g.estimated_lab_seconds);
    encodeEvalStats(w, g.eval_stats);

    w.u64(g.history.size());
    for (const ga::GenerationRecord &rec : g.history) {
        w.u64(rec.generation);
        w.f64(rec.best_fitness);
        w.f64(rec.mean_fitness);
        encodeEvalDetail(w, rec.best_detail);
        w.str(rec.best.serialize(pool));
    }
}

JobResult
decodeJobResult(WireReader &r, const isa::InstructionPool &pool)
{
    JobResult result;
    result.metric = r.str();
    result.from_artifact_store = r.u8() != 0;
    result.fingerprint = r.u64();

    ga::GaResult &g = result.ga;
    g.best = isa::Kernel::deserialize(pool, r.str());
    g.best_fitness = r.f64();
    g.best_detail = decodeEvalDetail(r);
    g.estimated_lab_seconds = r.f64();
    g.eval_stats = decodeEvalStats(r);

    const std::uint64_t n = r.u64();
    if (n > kMaxFrameBytes)
        throw ProtocolError("history length implausible");
    g.history.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        ga::GenerationRecord rec;
        rec.generation = static_cast<std::size_t>(r.u64());
        rec.best_fitness = r.f64();
        rec.mean_fitness = r.f64();
        rec.best_detail = decodeEvalDetail(r);
        rec.best = isa::Kernel::deserialize(pool, r.str());
        g.history.push_back(std::move(rec));
    }
    return result;
}

} // namespace service
} // namespace emstress
