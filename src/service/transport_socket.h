/**
 * @file
 * Socket transport: the wire protocol over local TCP.
 *
 * This file pair is the service's *only* home for socket syscalls and
 * wall-clock waits — emstress-lint sanctions them here (tag
 * "socket-transport") and bans them everywhere else in the service,
 * so evaluation paths can never grow a hidden dependency on I/O
 * timing. Frame bytes come from service/wire.h; this layer only moves
 * them.
 *
 *  - SocketServer: owns the listening socket of an emstressd
 *    instance. One thread per connection; each connection speaks the
 *    sequential request/stream protocol (see wire.h). A kShutdown
 *    request stops the accept loop after acking.
 *  - SocketClient: a Transport backed by one connection. submit()
 *    starts the job's event stream on that connection; cancel()
 *    opens a short-lived side connection, since the protocol is
 *    sequential per connection.
 */

#ifndef EMSTRESS_SERVICE_TRANSPORT_SOCKET_H
#define EMSTRESS_SERVICE_TRANSPORT_SOCKET_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "service/transport.h"
#include "service/wire.h"

namespace emstress {
namespace service {

/** A received frame: type + body bytes. */
struct Frame
{
    MsgType type = MsgType::kError;
    std::vector<std::uint8_t> body;
};

/**
 * TCP front-end of a SearchService (the emstressd core). Binds
 * 127.0.0.1 only: the service trusts its submitters with CPU budget,
 * so it stays loopback-scoped.
 */
class SocketServer
{
  public:
    struct Options
    {
        std::uint16_t port = 0; ///< 0 = ephemeral (see port()).
    };

    /**
     * Bind and listen. @param service must outlive the server.
     * @throws SimError when binding fails.
     */
    SocketServer(SearchService &service, Options options);

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Stops accepting and joins connection threads. */
    ~SocketServer();

    /** The bound port (resolved when Options::port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept-and-dispatch loop. Returns after a kShutdown request or
     * requestStop(). Call from the thread that should host the
     * server's lifetime (emstressd's main).
     */
    void serve();

    /** Make serve() return (callable from any thread). */
    void requestStop();

  private:
    void handleConnection(int fd);

    SearchService &service_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::vector<std::thread> connections_;
};

/**
 * Client side of the socket protocol. Not thread-safe: one client
 * per thread (matching the one-stream-per-connection protocol).
 */
class SocketClient : public Transport
{
  public:
    /** Connect. @throws SimError when the connection fails. */
    SocketClient(const std::string &host, std::uint16_t port);

    SocketClient(const SocketClient &) = delete;
    SocketClient &operator=(const SocketClient &) = delete;

    ~SocketClient() override;

    /** Version handshake; false on mismatch or transport error. */
    bool ping();

    Submission submit(const JobSpec &spec) override;
    JobEvent nextEvent(JobId id) override;

    /** Cancels over a fresh side connection. */
    bool cancel(JobId id) override;

    /** Server metrics snapshot (util/metrics JSON). */
    std::string metricsJson();

    /** Ask the server to exit its accept loop. */
    bool shutdownServer();

  private:
    Frame request(MsgType type, const WireWriter &body);

    std::string host_;
    std::uint16_t port_ = 0;
    int fd_ = -1;
    /// Platform preset per submitted job, for decoding result
    /// kernels against the right pool.
    std::unordered_map<JobId, PlatformPreset> presets_;
};

/// @{ Frame I/O over a connected socket (shared by both ends).
/** Write one frame; @throws SimError on a broken connection. */
void writeFrame(int fd, MsgType type, const WireWriter &body);
/** Read one frame; false on orderly EOF before a frame started. */
bool readFrame(int fd, Frame &out);
/// @}

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_TRANSPORT_SOCKET_H
