/**
 * @file
 * Socket transport: the wire protocol over local TCP.
 *
 * This file pair is the service's *only* home for socket syscalls and
 * wall-clock waits — emstress-lint sanctions them here (tag
 * "socket-transport") and bans them everywhere else in the service,
 * so evaluation paths can never grow a hidden dependency on I/O
 * timing. Frame bytes come from service/wire.h; this layer only moves
 * them.
 *
 *  - SocketServer: owns the listening socket of an emstressd
 *    instance. One thread per connection; each connection speaks the
 *    sequential request/stream protocol (see wire.h). A kShutdown
 *    request stops the accept loop after acking. A connection that
 *    dies mid-stream parks its job on the scheduler (grace window)
 *    instead of cancelling it; a kResume on a fresh connection
 *    re-attaches and replays from the client's last acked
 *    generation.
 *  - SocketClient: a Transport backed by one connection. submit()
 *    starts the job's event stream on that connection; cancel()
 *    opens a short-lived side connection, since the protocol is
 *    sequential per connection.
 *  - ReconnectingClient: SocketClient plus crash tolerance — detects
 *    dropped connections, reconnects with the bounded deterministic
 *    backoff schedule of util/faultpoint.h's RetryPolicy (here the
 *    waits are real host sleeps: this is the lab-host side of the
 *    link, not the modeled bench), resumes via kResume, and falls
 *    back to re-submitting the retained spec under the same token
 *    when the daemon restarted and lost the stream. Progress the
 *    client already processed is deduplicated, so the caller sees
 *    each generation exactly once no matter how often the link died.
 */

#ifndef EMSTRESS_SERVICE_TRANSPORT_SOCKET_H
#define EMSTRESS_SERVICE_TRANSPORT_SOCKET_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/transport.h"
#include "service/wire.h"
#include "util/faultpoint.h"

namespace emstress {
namespace service {

/** A received frame: type + body bytes. */
struct Frame
{
    MsgType type = MsgType::kError;
    std::vector<std::uint8_t> body;
};

/**
 * TCP front-end of a SearchService (the emstressd core). Binds
 * 127.0.0.1 only: the service trusts its submitters with CPU budget,
 * so it stays loopback-scoped.
 */
class SocketServer
{
  public:
    struct Options
    {
        std::uint16_t port = 0; ///< 0 = ephemeral (see port()).
    };

    /**
     * Bind and listen. @param service must outlive the server.
     * @throws SimError when binding fails.
     */
    SocketServer(SearchService &service, Options options);

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Stops accepting and joins connection threads. */
    ~SocketServer();

    /** The bound port (resolved when Options::port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept-and-dispatch loop. Returns after a kShutdown request or
     * requestStop(). Call from the thread that should host the
     * server's lifetime (emstressd's main).
     */
    void serve();

    /** Make serve() return (callable from any thread). */
    void requestStop();

  private:
    void handleConnection(int fd);

    /**
     * Stream a job's events over the connection until terminal.
     * Parks the stream (grace window) if the connection dies or the
     * stream is superseded, then rethrows.
     */
    void streamJob(int fd, JobId id, std::uint64_t stream_epoch,
                   PlatformPreset platform);

    /// @{ Connection-fd registry: requestStop() shuts every live
    /// connection down so threads blocked reading an idle peer's
    /// next request unblock and can be joined.
    struct ConnGuard;
    void registerConnection(int fd);
    void deregisterAndClose(int fd);
    /// @}

    SearchService &service_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::vector<std::thread> connections_;
    std::mutex conn_mutex_;
    std::vector<int> conn_fds_; // guards: conn_mutex_
};

/**
 * Client side of the socket protocol. Not thread-safe: one client
 * per thread (matching the one-stream-per-connection protocol).
 */
class SocketClient : public Transport
{
  public:
    /** Connect. @throws SimError when the connection fails. */
    SocketClient(const std::string &host, std::uint16_t port);

    SocketClient(const SocketClient &) = delete;
    SocketClient &operator=(const SocketClient &) = delete;

    ~SocketClient() override;

    /** Version handshake; false on mismatch or transport error. */
    bool ping();

    Submission submit(const JobSpec &spec) override;

    /**
     * Submit with a client-generated resume token (0 = none): the
     * scheduler registers the token so a later kResume on a fresh
     * connection can re-attach this job's stream.
     */
    Submission submit(const JobSpec &spec,
                      std::uint64_t resume_token);

    /**
     * Re-attach to a parked (or still-streaming) job by resume
     * token; the reply carries the job id and platform, and the
     * event stream continues on this connection, replaying past
     * last_acked_generation. @throws ProtocolError when the server
     * rejects the token (e.g. after a restart that lost it).
     */
    ResumeReply resume(const ResumeRequest &req);

    JobEvent nextEvent(JobId id) override;

    /** Cancels over a fresh side connection. */
    bool cancel(JobId id) override;

    /** Server metrics snapshot (util/metrics JSON). */
    std::string metricsJson();

    /** Ask the server to exit its accept loop. */
    bool shutdownServer();

  private:
    Frame request(MsgType type, const WireWriter &body);

    std::string host_;
    std::uint16_t port_ = 0;
    int fd_ = -1;
    /// Platform preset per submitted job, for decoding result
    /// kernels against the right pool.
    std::unordered_map<JobId, PlatformPreset> presets_;
};

/**
 * Crash-tolerant client: one logical job stream that survives
 * connection drops and daemon restarts. Wraps a SocketClient;
 * reconnect waits follow RetryPolicy::backoffFor — the same bounded
 * deterministic schedule the evaluation pipeline retries faulted lab
 * operations with — slept for real on the host (this file is the
 * service's sanctioned home for wall-clock waits).
 *
 * Recovery ladder on a dropped stream, per reconnect attempt:
 *   1. reconnect (re-resolving the port when a provider is set, so a
 *      daemon restarted on a fresh ephemeral port is found);
 *   2. kResume with the token — the daemon still holds the stream;
 *   3. on an unknown token (daemon restarted): re-submit the
 *      retained spec under the same token. Determinism + the
 *      persistent artifact store make the re-run (or the served
 *      artifact) bit-identical to the lost stream's job.
 * Progress at or below the last acknowledged generation is dropped,
 * so the caller observes each generation exactly once.
 */
class ReconnectingClient
{
  public:
    struct Options
    {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        /// Client-generated stream identity; must be nonzero.
        std::uint64_t resume_token = 0;
        /// Reconnect backoff schedule (bounded + deterministic).
        RetryPolicy retry;
        /// Re-resolves the port before each reconnect (e.g. re-reads
        /// a --port-file); null reuses Options::port.
        std::function<std::uint16_t()> port_provider;
    };

    /** Connects eagerly. @throws SimError when that fails. */
    explicit ReconnectingClient(Options options);

    ReconnectingClient(const ReconnectingClient &) = delete;
    ReconnectingClient &operator=(const ReconnectingClient &) = delete;

    /** Submit the stream's job (retained for resubmit-on-restart). */
    Submission submit(const JobSpec &spec);

    /**
     * Next deduplicated event of the submitted job, transparently
     * recovering from dropped connections. @throws SimError once
     * RetryPolicy::max_attempts successive reconnects fail.
     */
    JobEvent nextEvent();

    /** Job id currently streaming (changes after a resubmit). */
    JobId id() const { return sub_.id; }

    /** Successful kResume re-attachments performed. */
    std::uint64_t resumes() const { return resumes_; }

    /** Restart fallbacks (token unknown, spec re-submitted). */
    std::uint64_t resubmits() const { return resubmits_; }

    /** Test hook: sever the current connection (as a daemon crash
     *  would) so the next nextEvent() exercises recovery. */
    void dropConnection();

  private:
    /** Reconnect + resume (or resubmit) with backoff; throws after
     *  max_attempts consecutive failures. */
    void recoverStream();

    Options options_;
    JobSpec spec_;       ///< Retained for restart resubmission.
    Submission sub_;
    std::uint64_t last_acked_generation_ = 0;
    std::unique_ptr<SocketClient> client_;
    std::uint64_t resumes_ = 0;
    std::uint64_t resubmits_ = 0;
};

/// @{ Frame I/O over a connected socket (shared by both ends).
/** Write one frame; @throws SimError on a broken connection. */
void writeFrame(int fd, MsgType type, const WireWriter &body);
/** Read one frame; false on orderly EOF before a frame started. */
bool readFrame(int fd, Frame &out);
/// @}

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_TRANSPORT_SOCKET_H
