/**
 * @file
 * Content-addressed shared artifact store — the service-era promotion
 * of the cross-bench virus cache. Entries are finished JobResults
 * keyed by the submitting spec's FNV-1a content fingerprint
 * (service::jobFingerprint), so any tenant repeating a
 * result-identical spec is served the stored artifact byte for byte
 * instead of re-running the search. Because the fingerprint covers
 * every result-defining field of the spec, a served artifact is
 * bit-identical to what the search would have produced — the store
 * changes job *latency*, never job *results*.
 *
 * Time-to-live is measured in logical epochs, not wall clock: the
 * scheduler advances the epoch once per completed search. An entry
 * not fetched for `ttl_epochs` advances is evicted on the ttl-th
 * advance. Logical TTL keeps the store deterministic under test (no
 * clock reads — see the emstress-lint nondeterminism sanctions) while
 * still bounding staleness and memory under sustained traffic.
 *
 * Disk tier (Config::spill_dir): completed artifacts spill to a
 * content-addressed on-disk layout — `<root>/<fp16>.artifact` holding
 * the wire-encoded JobResult and a `<fp16>.meta` text sidecar
 * carrying schema version, fingerprint, logical epoch, platform
 * preset and payload size. Writes are atomic (temp file + rename,
 * meta last so the sidecar is the commit point). On construction the
 * store scans the directory and indexes every valid sidecar without
 * reading payloads; payload bytes load lazily on the first fetch of a
 * spilled fingerprint, so a restarted daemon serves bit-identical
 * artifacts without re-running searches. Corrupt or truncated spill
 * files are quarantined (moved under `<root>/quarantine/`), counted,
 * and treated as misses — disk damage degrades service, never
 * crashes it. The logical-epoch TTL extends to the disk tier:
 * eviction removes the file pair along with the index entry.
 */

#ifndef EMSTRESS_SERVICE_ARTIFACT_STORE_H
#define EMSTRESS_SERVICE_ARTIFACT_STORE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "service/job.h"

namespace emstress {
namespace service {

/**
 * Thread-safe, content-addressed, TTL-bounded artifact store with an
 * optional persistent disk tier.
 */
class ArtifactStore
{
  public:
    struct Config
    {
        /// Epochs an entry survives without being fetched; 0 means
        /// entries never expire.
        std::size_t ttl_epochs = 0;
        /// Spill root for the persistent tier; empty keeps the store
        /// memory-only (the process-lifetime cache of PR 7).
        std::string spill_dir;
    };

    /** Cumulative counters (also mirrored into the metrics registry
     * under "service.store.*"). */
    struct Stats
    {
        std::uint64_t hits = 0;   ///< Any-tier fetch hits.
        std::uint64_t misses = 0; ///< Fetches that found nothing.
        /// Fetch hits whose payload was (re)loaded from disk.
        std::uint64_t disk_hits = 0;
        std::uint64_t inserts = 0; ///< First-time fingerprints only.
        /// Overwrites of an already-present fingerprint. Split from
        /// inserts so mirrored metrics expose double completions.
        std::uint64_t replacements = 0;
        std::uint64_t expirations = 0;
        std::uint64_t invalidations = 0;
        /// Spill files indexed by the startup scan.
        std::uint64_t spill_indexed = 0;
        std::uint64_t spill_writes = 0; ///< Artifact+meta pairs written.
        /// Corrupt/truncated spill files moved to quarantine/.
        std::uint64_t spill_quarantined = 0;
        /// Spill I/O failures absorbed (write/remove errors).
        std::uint64_t spill_errors = 0;
    };

    /**
     * Construct the store; a nonempty Config::spill_dir is created if
     * absent and scanned for previously spilled artifacts.
     */
    explicit ArtifactStore(Config config);

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Look up an artifact by content address. A hit refreshes the
     * entry's last-used epoch (LRU-in-epochs semantics, persisted to
     * the sidecar so TTL survives restarts). A fingerprint indexed on
     * disk but not resident loads lazily; a payload that fails to
     * load or decode is quarantined and reported as a miss.
     */
    std::shared_ptr<const JobResult> fetch(std::uint64_t fingerprint);

    /**
     * Store (or replace) an artifact under its content address and
     * spill it to the disk tier when one is configured. The preset
     * names the instruction pool the result's kernels serialize
     * against. Replacing an existing fingerprint must be byte-benign:
     * debug builds assert the encoded payloads are identical.
     */
    void insert(std::uint64_t fingerprint,
                std::shared_ptr<const JobResult> artifact,
                PlatformPreset preset = PlatformPreset::kJunoA72);

    /** Drop one entry, both tiers (explicit invalidation); false when
     *  absent. */
    bool invalidate(std::uint64_t fingerprint);

    /** Drop everything, both tiers. */
    void clear();

    /**
     * Advance logical time one epoch and evict entries not fetched
     * for ttl_epochs advances (an entry last used at epoch E dies on
     * the advance to E + ttl_epochs). Called by the scheduler after
     * every completed search. Disk-tier files are removed with their
     * entries.
     */
    void advanceEpoch();

    /** Entries currently indexed (resident or spilled). */
    std::size_t size() const;

    /** True when the fingerprint's payload is resident in memory
     *  (false for disk-indexed entries not yet loaded). */
    bool resident(std::uint64_t fingerprint) const;

    /** Current logical epoch. */
    std::size_t epoch() const;

    /** Counter snapshot. */
    Stats stats() const;

  private:
    struct Entry
    {
        /// Resident payload; null when only the spill file holds it.
        std::shared_ptr<const JobResult> artifact; // guards: mutex_
        /// Epoch of the last fetch/insert. guards: mutex_
        std::size_t last_used = 0;
        /// Pool the payload's kernels serialize against. guards: mutex_
        PlatformPreset preset = PlatformPreset::kJunoA72;
        /// An artifact/meta pair exists under spill_dir. guards: mutex_
        bool on_disk = false;
    };

    /// @{ Disk-tier internals (all called with mutex_ held).
    void scanSpillDirLocked();
    bool spillLocked(std::uint64_t fingerprint, const Entry &entry);
    std::shared_ptr<const JobResult>
    loadSpillLocked(std::uint64_t fingerprint, Entry &entry);
    void rewriteMetaLocked(std::uint64_t fingerprint,
                           const Entry &entry);
    void quarantineLocked(std::uint64_t fingerprint);
    void removeSpillLocked(std::uint64_t fingerprint);
    /// @}

    void noteCounter(const char *name, std::uint64_t delta = 1);

    Config config_;
    mutable std::mutex mutex_;
    /// std::map: eviction and clear() touch the disk tier, and file
    /// operations must happen in deterministic (fingerprint) order.
    std::map<std::uint64_t, Entry> entries_; // guards: mutex_
    std::size_t epoch_ = 0;                  // guards: mutex_
    Stats stats_;                            // guards: mutex_
};

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_ARTIFACT_STORE_H
