/**
 * @file
 * Content-addressed shared artifact store — the service-era promotion
 * of the cross-bench virus cache. Entries are finished JobResults
 * keyed by the submitting spec's FNV-1a content fingerprint
 * (service::jobFingerprint), so any tenant repeating a
 * result-identical spec is served the stored artifact byte for byte
 * instead of re-running the search. Because the fingerprint covers
 * every result-defining field of the spec, a served artifact is
 * bit-identical to what the search would have produced — the store
 * changes job *latency*, never job *results*.
 *
 * Time-to-live is measured in logical epochs, not wall clock: the
 * scheduler advances the epoch once per completed search. Entries
 * unused for `ttl_epochs` advances are evicted. Logical TTL keeps the
 * store deterministic under test (no clock reads — see the
 * emstress-lint nondeterminism sanctions) while still bounding staleness
 * and memory under sustained traffic.
 */

#ifndef EMSTRESS_SERVICE_ARTIFACT_STORE_H
#define EMSTRESS_SERVICE_ARTIFACT_STORE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "service/job.h"

namespace emstress {
namespace service {

/**
 * Thread-safe, content-addressed, TTL-bounded artifact store.
 */
class ArtifactStore
{
  public:
    struct Config
    {
        /// Epochs an entry survives without being fetched; 0 means
        /// entries never expire.
        std::size_t ttl_epochs = 0;
    };

    /** Cumulative counters (also mirrored into the metrics registry
     * by the scheduler). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t expirations = 0;
        std::uint64_t invalidations = 0;
    };

    explicit ArtifactStore(Config config) : config_(config) {}

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Look up an artifact by content address. A hit refreshes the
     * entry's last-used epoch (LRU-in-epochs semantics).
     */
    std::shared_ptr<const JobResult>
    fetch(std::uint64_t fingerprint)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(fingerprint);
        if (it == entries_.end()) {
            ++stats_.misses;
            return nullptr;
        }
        it->second.last_used = epoch_;
        ++stats_.hits;
        return it->second.artifact;
    }

    /** Store (or replace) an artifact under its content address. */
    void
    insert(std::uint64_t fingerprint,
           std::shared_ptr<const JobResult> artifact)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = entries_[fingerprint];
        entry.artifact = std::move(artifact);
        entry.last_used = epoch_;
        ++stats_.inserts;
    }

    /** Drop one entry (explicit invalidation); false when absent. */
    bool
    invalidate(std::uint64_t fingerprint)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (entries_.erase(fingerprint) == 0)
            return false;
        ++stats_.invalidations;
        return true;
    }

    /** Drop everything. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.invalidations += entries_.size();
        entries_.clear();
    }

    /**
     * Advance logical time one epoch and evict entries not fetched
     * for ttl_epochs advances. Called by the scheduler after every
     * completed search.
     */
    void
    advanceEpoch()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++epoch_;
        if (config_.ttl_epochs == 0)
            return;
        // Order-independent: every entry is visited and evicted (or
        // not) purely on its own last_used age. lint: ordered-merge
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (epoch_ - it->second.last_used > config_.ttl_epochs) {
                it = entries_.erase(it);
                ++stats_.expirations;
            } else {
                ++it;
            }
        }
    }

    /** Entries currently stored. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    /** Current logical epoch. */
    std::size_t
    epoch() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return epoch_;
    }

    /** Counter snapshot. */
    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    struct Entry
    {
        std::shared_ptr<const JobResult> artifact; // guards: mutex_
        /// Epoch of the last fetch/insert. guards: mutex_
        std::size_t last_used = 0;
    };

    Config config_;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, Entry> entries_; // guards: mutex_
    std::size_t epoch_ = 0;                            // guards: mutex_
    Stats stats_;                                      // guards: mutex_
};

} // namespace service
} // namespace emstress

#endif // EMSTRESS_SERVICE_ARTIFACT_STORE_H
