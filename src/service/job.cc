/**
 * @file
 * Job model implementation.
 */

#include "service/job.h"

#include <sstream>

#include "platform/platform.h"
#include "util/error.h"

namespace emstress {
namespace service {

platform::PlatformConfig
presetConfig(PlatformPreset preset)
{
    switch (preset) {
    case PlatformPreset::kJunoA72:
        return platform::junoA72Config();
    case PlatformPreset::kJunoA53:
        return platform::junoA53Config();
    case PlatformPreset::kAthlon:
        return platform::athlonConfig();
    }
    throwConfigError("unknown platform preset");
}

const isa::InstructionPool &
presetPool(PlatformPreset preset)
{
    // Immutable after construction; shared by every job and the
    // client-side wire codec. Construction is deterministic, so these
    // are content-identical to the pools platforms build themselves.
    static const isa::InstructionPool arm =
        isa::InstructionPool::armV8();
    static const isa::InstructionPool x86 =
        isa::InstructionPool::x86Sse2();
    return presetConfig(preset).isa == isa::IsaFamily::ArmV8 ? arm
                                                             : x86;
}

std::string
presetName(PlatformPreset preset)
{
    switch (preset) {
    case PlatformPreset::kJunoA72: return "a72";
    case PlatformPreset::kJunoA53: return "a53";
    case PlatformPreset::kAthlon:  return "athlon";
    }
    return "unknown";
}

bool
presetFromName(const std::string &name, PlatformPreset &out)
{
    if (name == "a72") {
        out = PlatformPreset::kJunoA72;
        return true;
    }
    if (name == "a53") {
        out = PlatformPreset::kJunoA53;
        return true;
    }
    if (name == "athlon") {
        out = PlatformPreset::kAthlon;
        return true;
    }
    return false;
}

std::string
jobStateName(JobState state)
{
    switch (state) {
    case JobState::kQueued:    return "queued";
    case JobState::kRunning:   return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed:    return "failed";
    }
    return "unknown";
}

std::string
jobModeName(JobMode mode)
{
    switch (mode) {
    case JobMode::kPassiveVirus: return "virus";
    case JobMode::kActiveEmfi:   return "emfi";
    }
    return "unknown";
}

std::string
jobClassName(JobClass job_class)
{
    switch (job_class) {
    case JobClass::kBatch:       return "batch";
    case JobClass::kInteractive: return "interactive";
    }
    return "unknown";
}

std::string
jobDescription(const JobSpec &spec)
{
    std::ostringstream os;
    os.precision(17);
    os << "plat:" << presetName(spec.platform)
       << ":seed" << spec.platform_seed
       << "|ga:" << spec.ga.population << 'x' << spec.ga.generations
       << ":len" << spec.ga.kernel_length
       << ":mut" << spec.ga.mutation_rate
       << ":op" << spec.ga.operand_mutation_ratio
       << ":tk" << spec.ga.tournament_k
       << ":el" << spec.ga.elite
       << ":seed" << spec.ga.seed
       << ":rs" << spec.ga.restarts
       << ":ra" << spec.ga.retry.max_attempts
       << "|eval:dur" << spec.eval.duration_s
       << ":sa" << spec.eval.sa_samples
       << ":f" << spec.eval.f_lo_hz << '-' << spec.eval.f_hi_hz
       << ":cores" << spec.eval.active_cores
       << ":stream" << (spec.eval.streaming ? 1 : 0)
       << "|metric:" << core::virusMetricName(spec.metric);
    // Active-mode fields extend the description; the passive form
    // stays byte-identical to the pre-EMFI service, so (a) stored
    // passive artifacts from older deployments remain addressable
    // and (b) an active spec can never collide with a passive one
    // that matches it field-for-field — the "|mode:emfi" suffix
    // alone separates the preimages.
    if (spec.mode == JobMode::kActiveEmfi) {
        os << "|mode:" << jobModeName(spec.mode)
           << "|victim:seed" << spec.emfi.victim_seed
           << ":len" << spec.emfi.victim_length
           << ":tgt" << spec.emfi.target_slot
           << "|sched:" << spec.emfi.schedule_seed
           << "|grid:t0" << spec.emfi.t0_max_s
           << ":amp" << spec.emfi.amplitude_max_a;
    }
    return os.str();
}

std::uint64_t
jobFingerprint(const JobSpec &spec)
{
    // FNV-1a 64-bit, the same construction the cross-bench virus
    // cache fingerprints budgets with.
    const std::string s = jobDescription(spec);
    std::uint64_t h = 1469598103934665603ull;
    for (const char ch : s) {
        h ^= static_cast<std::uint64_t>(
            static_cast<unsigned char>(ch));
        h *= 1099511628211ull;
    }
    return h;
}

std::unique_ptr<ga::FitnessEvaluator>
makePlatformEvaluator(const JobSpec &spec)
{
    // Build a throwaway bound evaluator, then take an owning clone:
    // PlatformFitness::clone replicates the platform, so the returned
    // evaluator carries its own simulation stack and remains valid
    // after the local platform dies.
    platform::Platform plat(presetConfig(spec.platform),
                            spec.platform_seed);
    if (spec.mode == JobMode::kActiveEmfi) {
        requireConfig(spec.emfi.victim_length > 0,
                      "EMFI job needs a non-empty victim");
        requireConfig(
            spec.emfi.target_slot < spec.emfi.victim_length,
            "EMFI target_slot outside the victim kernel");
        requireConfig(
            spec.ga.kernel_length >= ga::kPulseGenomeSlots,
            "EMFI job kernel_length below the pulse genome size");
        core::EmfiCampaignSpec campaign;
        Rng victim_rng(spec.emfi.victim_seed);
        campaign.victim = isa::Kernel::random(
            presetPool(spec.platform), spec.emfi.victim_length,
            victim_rng);
        campaign.target_slot = spec.emfi.target_slot;
        campaign.eval = spec.eval;
        campaign.effects.schedule_seed = spec.emfi.schedule_seed;
        campaign.grid.t0_max_s = spec.emfi.t0_max_s;
        campaign.grid.amplitude_max_a = spec.emfi.amplitude_max_a;
        core::PulseFaultFitness bound_emfi(plat, campaign);
        auto owned_emfi = bound_emfi.clone();
        requireSim(owned_emfi != nullptr,
                   "EMFI evaluator unexpectedly not cloneable");
        return owned_emfi;
    }
    std::unique_ptr<core::PlatformFitness> bound;
    switch (spec.metric) {
    case core::VirusMetric::EmAmplitude:
        bound = std::make_unique<core::EmAmplitudeFitness>(plat,
                                                           spec.eval);
        break;
    case core::VirusMetric::MaxDroop:
        bound = std::make_unique<core::MaxDroopFitness>(plat,
                                                        spec.eval);
        break;
    case core::VirusMetric::PeakToPeak:
        bound = std::make_unique<core::PeakToPeakFitness>(plat,
                                                          spec.eval);
        break;
    }
    requireConfig(bound != nullptr, "unknown virus metric");
    auto owned = bound->clone();
    requireSim(owned != nullptr,
               "platform evaluator unexpectedly not cloneable");
    return owned;
}

} // namespace service
} // namespace emstress
