/**
 * @file
 * A small reusable worker-thread pool. The GA's batch evaluator, the
 * resonance sweeps and any future embarrassingly parallel stage share
 * this one primitive: parallelFor() fans a fixed-size index range out
 * over persistent workers and blocks until every index is done.
 *
 * Design constraints that shaped the interface:
 *  - Callers own determinism. parallelFor passes each task its item
 *    index and its worker id; callers that need per-thread state
 *    (e.g. a cloned Platform) index it by worker id, and callers that
 *    need reproducible noise derive it from the item index — never
 *    from scheduling order.
 *  - One job at a time. The GA evaluates one generation, joins, then
 *    breeds; a multi-queue scheduler would buy nothing here.
 *  - Exceptions propagate: the first exception thrown by any task is
 *    rethrown on the calling thread after the job drains.
 */

#ifndef EMSTRESS_UTIL_THREAD_POOL_H
#define EMSTRESS_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"

namespace emstress {

/**
 * Number of worker threads to use when a caller asks for "auto"
 * (thread count 0): the EMSTRESS_THREADS environment variable when
 * set to a positive integer, otherwise the hardware concurrency
 * (never less than 1).
 */
inline std::size_t
defaultThreadCount()
{
    // Operational knob, not a seed: thread count never changes
    // results (the determinism suite proves 1/2/8-thread
    // bit-identity), only how fast they arrive.
    if (const char *env = std::getenv("EMSTRESS_THREADS")) { // lint: env-config
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

/**
 * Resolve a requested thread count: 0 means defaultThreadCount(),
 * anything else is taken literally.
 */
inline std::size_t
resolveThreadCount(std::size_t requested)
{
    return requested == 0 ? defaultThreadCount() : requested;
}

/**
 * Fixed-size pool of persistent worker threads executing one
 * parallelFor job at a time.
 */
class ThreadPool
{
  public:
    /** Task signature: (item index, worker id). */
    using Task = std::function<void(std::size_t, std::size_t)>;

    /**
     * Start the workers.
     * @param threads Worker count; 0 means defaultThreadCount().
     */
    explicit ThreadPool(std::size_t threads)
    {
        const std::size_t n = resolveThreadCount(threads);
        workers_.reserve(n);
        for (std::size_t w = 0; w < n; ++w)
            workers_.emplace_back([this, w] { workerLoop(w); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run fn(i, worker) for every i in [0, n) across the workers and
     * block until all complete. Items are claimed dynamically, so
     * uneven task costs balance automatically. The first exception
     * thrown by any task is rethrown here once the job drains.
     *
     * Must not be called concurrently from multiple threads, and must
     * not be called from inside one of its own tasks.
     */
    void
    parallelFor(std::size_t n, const Task &fn)
    {
        if (n == 0)
            return;
        std::unique_lock<std::mutex> lock(mutex_);
        requireSim(job_ == nullptr,
                   "ThreadPool::parallelFor is not reentrant");
        job_ = &fn;
        job_n_ = n;
        next_.store(0, std::memory_order_relaxed);
        active_ = workers_.size();
        error_ = nullptr;
        ++epoch_;
        work_cv_.notify_all();
        done_cv_.wait(lock, [this] { return active_ == 0; });
        job_ = nullptr;
        if (error_) {
            std::exception_ptr err = error_;
            error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(err);
        }
    }

  private:
    void
    workerLoop(std::size_t worker)
    {
        std::uint64_t seen_epoch = 0;
        for (;;) {
            const Task *job = nullptr;
            std::size_t n = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_cv_.wait(lock, [&] {
                    return stop_ || epoch_ != seen_epoch;
                });
                // A published job is drained even when stop_ is
                // already set — otherwise a worker that observes
                // both at once would abandon its share and leave
                // parallelFor waiting forever. Exit only when no new
                // epoch is pending.
                if (stop_ && epoch_ == seen_epoch)
                    return;
                seen_epoch = epoch_;
                job = job_;
                n = job_n_;
            }
            for (;;) {
                const std::size_t i =
                    next_.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    break;
                try {
                    (*job)(i, worker);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!error_)
                        error_ = std::current_exception();
                }
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--active_ == 0)
                    done_cv_.notify_all();
            }
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const Task *job_ = nullptr;  // guards: mutex_
    std::size_t job_n_ = 0;      // guards: mutex_
    std::atomic<std::size_t> next_{0}; ///< Claim counter (lock-free).
    std::size_t active_ = 0;     // guards: mutex_
    std::uint64_t epoch_ = 0;    // guards: mutex_
    std::exception_ptr error_;   // guards: mutex_
    bool stop_ = false;          // guards: mutex_
};

} // namespace emstress

#endif // EMSTRESS_UTIL_THREAD_POOL_H
