/**
 * @file
 * A shared worker fleet multiplexing task batches from many
 * concurrent producers — the service-era generalization of
 * util/thread_pool.h. Where ThreadPool::parallelFor runs exactly one
 * job at a time (the batch-harness shape: evaluate a generation,
 * join, breed), a WorkerFleet accepts batches from any number of
 * threads at once: each caller blocks only on *its own* batch while
 * the workers drain every admitted batch in admission order, so the
 * evaluation tasks of hundreds of in-flight search jobs share one
 * fixed set of threads.
 *
 * Design constraints, mirroring ThreadPool's:
 *  - Callers own determinism. Each task receives its item index and
 *    the executing worker id; per-worker state (cloned platforms)
 *    is indexed by worker id and reproducible noise derives from the
 *    item, never from scheduling order. Which batch a worker drains
 *    next is scheduling, not semantics: every result slot is written
 *    by exactly one task, so batch interleaving cannot change any
 *    result bit.
 *  - Batches are FIFO with overlap: workers finish claiming indices
 *    of an earlier batch before starting a later one, but a later
 *    batch starts as soon as claims (not completions) of the earlier
 *    one run out — no convoy behind one slow task.
 *  - Cancellation drains, never poisons: a batch submitted with a
 *    cancel flag skips tasks that have not started once the flag is
 *    set. Skipped tasks are *counted and reported* to the submitting
 *    caller only; other batches in flight are untouched.
 *  - The first exception a batch's task throws is rethrown on that
 *    batch's submitting thread after the batch drains.
 */

#ifndef EMSTRESS_UTIL_WORKER_FLEET_H
#define EMSTRESS_UTIL_WORKER_FLEET_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"

namespace emstress {

/**
 * Fixed set of persistent workers draining task batches from any
 * number of concurrent submitters.
 */
class WorkerFleet
{
  public:
    /** Task signature: (item index, worker id). */
    using Task = std::function<void(std::size_t, std::size_t)>;

    /** Outcome of one submitted batch. */
    struct BatchOutcome
    {
        std::size_t executed = 0; ///< Tasks that ran to completion.
        std::size_t skipped = 0;  ///< Tasks dropped by cancellation.
    };

    /**
     * Start the workers.
     * @param threads Worker count; 0 means defaultThreadCount().
     */
    explicit WorkerFleet(std::size_t threads)
    {
        const std::size_t n = resolveThreadCount(threads);
        workers_.reserve(n);
        for (std::size_t w = 0; w < n; ++w)
            workers_.emplace_back([this, w] { workerLoop(w); });
    }

    WorkerFleet(const WorkerFleet &) = delete;
    WorkerFleet &operator=(const WorkerFleet &) = delete;

    ~WorkerFleet()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Submit one batch — fn(i, worker) for every i in [0, n) — and
     * block until every index is executed or skipped. Unlike
     * ThreadPool::parallelFor this may be called from any number of
     * threads concurrently (but not from inside a fleet task: a
     * worker waiting on its own fleet would deadlock the fleet).
     *
     * @param n      Item count.
     * @param fn     Task body; each index runs at most once.
     * @param cancel Optional cancellation flag. Once it reads true,
     *               indices not yet claimed are skipped (tasks
     *               already running complete normally).
     */
    BatchOutcome
    run(std::size_t n, const Task &fn,
        const std::atomic<bool> *cancel = nullptr)
    {
        BatchOutcome out;
        if (n == 0)
            return out;
        Batch batch;
        batch.fn = &fn;
        batch.n = n;
        batch.cancel = cancel;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(&batch);
        }
        work_cv_.notify_all();
        std::exception_ptr error;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            batch.done_cv.wait(lock, [&batch] {
                return batch.completed == batch.n;
            });
            // Copy the outcome out while still holding the lock.
            // Reading after the scope closed was flagged by lint R7:
            // it leaned on the wait's final mutex reacquire for the
            // visibility of the last worker's error/executed writes.
            error = batch.error;
            out.executed = batch.executed;
        }
        if (error)
            std::rethrow_exception(error);
        out.skipped = n - out.executed;
        return out;
    }

  private:
    /** One submitted batch's coordination state (caller's stack).
     *  `fn`/`n`/`cancel` are written once before publication and
     *  read-only afterwards; the progress fields are shared with the
     *  workers and annotated for lint R7. */
    struct Batch
    {
        const Task *fn = nullptr;
        std::size_t n = 0;
        const std::atomic<bool> *cancel = nullptr;
        /// Next unclaimed index. guards: mutex_
        std::size_t next = 0;
        /// Executed + skipped so far. guards: mutex_
        std::size_t completed = 0;
        /// Ran to completion. guards: mutex_
        std::size_t executed = 0;
        /// First task exception. guards: mutex_
        std::exception_ptr error;
        std::condition_variable done_cv;
    };

    void
    workerLoop(std::size_t worker)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            work_cv_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            Batch *batch = queue_.front();
            const std::size_t i = batch->next++;
            const bool last_claim = batch->next >= batch->n;
            if (last_claim)
                queue_.pop_front();
            const bool cancelled =
                batch->cancel != nullptr
                && batch->cancel->load(std::memory_order_relaxed);
            if (cancelled) {
                // Drain without executing: count the skip and move
                // on. The batch completes once every index is
                // accounted for, running tasks included.
                if (++batch->completed == batch->n)
                    batch->done_cv.notify_all();
                continue;
            }
            lock.unlock();
            std::exception_ptr err;
            try {
                (*batch->fn)(i, worker);
            } catch (...) {
                err = std::current_exception();
            }
            lock.lock();
            if (err && !batch->error)
                batch->error = err;
            if (!err)
                ++batch->executed;
            if (++batch->completed == batch->n)
                batch->done_cv.notify_all();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::deque<Batch *> queue_; // guards: mutex_
    bool stop_ = false;         // guards: mutex_
};

} // namespace emstress

#endif // EMSTRESS_UTIL_WORKER_FLEET_H
