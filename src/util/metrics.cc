/**
 * @file
 * Metrics registry implementation and the BENCH_perf.json
 * serializer/parser. The JSON dialect is the minimal subset the
 * schema needs (objects, arrays, strings, numbers); doubles are
 * written shortest-round-trip (std::to_chars) so a
 * serialize-parse cycle is bit-exact.
 */

#include "util/metrics.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <system_error>

#include "util/error.h"

namespace emstress {
namespace metrics {

namespace {

bool
readEnabledFromEnv()
{
    // Observability gate only: toggling it never changes any
    // simulated result (tests/test_ga.cc pins bit-identity).
    const char *env = std::getenv("EMSTRESS_METRICS"); // lint: env-config
    return env == nullptr || std::string_view(env) != "0";
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag(readEnabledFromEnv());
    return flag;
}

} // namespace

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(std::string_view counter, std::uint64_t delta)
{
    if (!enabled())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(counter);
    if (it == counters_.end())
        counters_.emplace(std::string(counter), delta);
    else
        it->second += delta;
}

void
Registry::setGauge(std::string_view name, double value)
{
    if (!enabled())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    if (it == gauges_.end())
        gauges_.emplace(std::string(name), value);
    else
        it->second = value;
}

void
Registry::recordPhase(std::string_view name, double wall_s,
                      double cpu_s)
{
    if (!enabled())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = phases_.find(name);
    if (it == phases_.end())
        it = phases_.emplace(std::string(name), PhaseStats{}).first;
    it->second.wall_s += wall_s;
    it->second.cpu_s += cpu_s;
    ++it->second.count;
}

void
Registry::recordLatency(std::string_view name, double seconds)
{
    if (!enabled())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = latencies_.find(name);
    if (it == latencies_.end()) {
        it = latencies_.emplace(std::string(name),
                                HistogramSnapshot{})
                 .first;
        it->second.buckets.assign(LatencyBuckets::kBuckets, 0);
    }
    ++it->second.count;
    it->second.total_s += seconds;
    ++it->second.buckets[LatencyBuckets::bucketFor(seconds)];
}

MetricsSnapshot
Registry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.insert(counters_.begin(), counters_.end());
    snap.gauges.insert(gauges_.begin(), gauges_.end());
    snap.phases.insert(phases_.begin(), phases_.end());
    snap.latencies.insert(latencies_.begin(), latencies_.end());
    return snap;
}

void
Registry::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    phases_.clear();
    latencies_.clear();
}

// ------------------------------------------------- serialization

namespace {

/** Shortest representation that parses back to the same double. */
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

void
appendEscaped(std::string &out, std::string_view s)
{
    out += '"';
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out += ch; break;
        }
    }
    out += '"';
}

template <typename Map, typename WriteValue>
void
appendMap(std::string &out, const char *key, const Map &map,
          const WriteValue &write_value, const char *indent = "  ")
{
    out += indent;
    appendEscaped(out, key);
    out += ": {";
    bool first = true;
    for (const auto &[name, value] : map) {
        out += first ? "\n" : ",\n";
        first = false;
        out += indent;
        out += "  ";
        appendEscaped(out, name);
        out += ": ";
        write_value(out, value);
    }
    if (!first) {
        out += '\n';
        out += indent;
    }
    out += '}';
}

void
appendSnapshotBody(std::string &out, const MetricsSnapshot &snap)
{
    appendMap(out, "phases", snap.phases,
              [](std::string &o, const PhaseStats &p) {
                  o += "{\"wall_s\": " + formatDouble(p.wall_s)
                      + ", \"cpu_s\": " + formatDouble(p.cpu_s)
                      + ", \"count\": " + std::to_string(p.count)
                      + "}";
              });
    out += ",\n";
    appendMap(out, "counters", snap.counters,
              [](std::string &o, std::uint64_t v) {
                  o += std::to_string(v);
              });
    out += ",\n";
    appendMap(out, "gauges", snap.gauges,
              [](std::string &o, double v) {
                  o += formatDouble(v);
              });
    out += ",\n";
    appendMap(out, "latencies", snap.latencies,
              [](std::string &o, const HistogramSnapshot &h) {
                  o += "{\"count\": " + std::to_string(h.count)
                      + ", \"total_s\": " + formatDouble(h.total_s)
                      + ", \"buckets\": [";
                  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                      if (i > 0)
                          o += ", ";
                      o += std::to_string(h.buckets[i]);
                  }
                  o += "]}";
              });
}

} // namespace

std::string
toJson(const MetricsSnapshot &snap)
{
    std::string out = "{\n";
    appendSnapshotBody(out, snap);
    out += "\n}\n";
    return out;
}

std::string
benchPerfJson(const std::string &bench, const std::string &mode,
              std::size_t threads, const MetricsSnapshot &snap)
{
    std::string out = "{\n";
    out += "  \"schema\": \"emstress-bench-perf-v1\",\n";
    out += "  \"bench\": ";
    appendEscaped(out, bench);
    out += ",\n  \"mode\": ";
    appendEscaped(out, mode);
    out += ",\n  \"threads\": " + std::to_string(threads) + ",\n";
    appendSnapshotBody(out, snap);
    out += "\n}\n";
    return out;
}

// ------------------------------------------------------- parsing

namespace {

/** Generic value of the JSON subset the snapshot schema emits. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string number; ///< Raw text: re-parsed per target type.
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(std::string_view key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        requireSim(pos_ == text_.size(),
                   "metrics JSON: trailing characters");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\n'
                   || text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        requireSim(pos_ < text_.size(),
                   "metrics JSON: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char ch)
    {
        requireSim(peek() == ch,
                   std::string("metrics JSON: expected '") + ch
                       + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        const char ch = peek();
        if (ch == '{')
            return parseObject();
        if (ch == '[')
            return parseArray();
        if (ch == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
        }
        if (ch == 't' || ch == 'f')
            return parseKeyword();
        if (ch == 'n')
            return parseKeyword();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            const char ch = peek();
            ++pos_;
            if (ch == '}')
                return v;
            requireSim(ch == ',',
                       "metrics JSON: expected ',' or '}'");
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            const char ch = peek();
            ++pos_;
            if (ch == ']')
                return v;
            requireSim(ch == ',',
                       "metrics JSON: expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            requireSim(pos_ < text_.size(),
                       "metrics JSON: unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"')
                return out;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            requireSim(pos_ < text_.size(),
                       "metrics JSON: unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            default:
                throw SimulationError(
                    "metrics JSON: unsupported escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if ((ch >= '0' && ch <= '9') || ch == '-' || ch == '+'
                || ch == '.' || ch == 'e' || ch == 'E'
                || ch == 'i' || ch == 'n' || ch == 'f' || ch == 'a')
                ++pos_;
            else
                break;
        }
        requireSim(pos_ > start, "metrics JSON: expected a number");
        v.number.assign(text_.substr(start, pos_ - start));
        return v;
    }

    JsonValue
    parseKeyword()
    {
        JsonValue v;
        for (const std::string_view kw :
             {std::string_view("true"), std::string_view("false"),
              std::string_view("null")}) {
            if (text_.substr(pos_, kw.size()) == kw) {
                pos_ += kw.size();
                v.kind = kw == "null" ? JsonValue::Kind::Null
                                      : JsonValue::Kind::Bool;
                v.boolean = kw == "true";
                return v;
            }
        }
        throw SimulationError("metrics JSON: unknown keyword");
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

std::uint64_t
asUint64(const JsonValue &v)
{
    requireSim(v.kind == JsonValue::Kind::Number,
               "metrics JSON: expected an integer");
    std::uint64_t out = 0;
    const auto res = std::from_chars(
        v.number.data(), v.number.data() + v.number.size(), out);
    requireSim(res.ec == std::errc()
                   && res.ptr == v.number.data() + v.number.size(),
               "metrics JSON: malformed integer");
    return out;
}

double
asDouble(const JsonValue &v)
{
    requireSim(v.kind == JsonValue::Kind::Number,
               "metrics JSON: expected a number");
    double out = 0.0;
    const auto res = std::from_chars(
        v.number.data(), v.number.data() + v.number.size(), out);
    requireSim(res.ec == std::errc()
                   && res.ptr == v.number.data() + v.number.size(),
               "metrics JSON: malformed number");
    return out;
}

const JsonValue *
requireObject(const JsonValue &v, std::string_view key)
{
    const JsonValue *child = v.find(key);
    if (child == nullptr)
        return nullptr;
    requireSim(child->kind == JsonValue::Kind::Object,
               "metrics JSON: expected an object");
    return child;
}

} // namespace

MetricsSnapshot
parseSnapshotJson(const std::string &json)
{
    JsonParser parser(json);
    const JsonValue root = parser.parse();
    requireSim(root.kind == JsonValue::Kind::Object,
               "metrics JSON: top level must be an object");

    MetricsSnapshot snap;
    if (const JsonValue *counters = requireObject(root, "counters"))
        for (const auto &[name, value] : counters->object)
            snap.counters.emplace(name, asUint64(value));
    if (const JsonValue *gauges = requireObject(root, "gauges"))
        for (const auto &[name, value] : gauges->object)
            snap.gauges.emplace(name, asDouble(value));
    if (const JsonValue *phases = requireObject(root, "phases")) {
        for (const auto &[name, value] : phases->object) {
            requireSim(value.kind == JsonValue::Kind::Object,
                       "metrics JSON: phase must be an object");
            PhaseStats p;
            if (const JsonValue *w = value.find("wall_s"))
                p.wall_s = asDouble(*w);
            if (const JsonValue *c = value.find("cpu_s"))
                p.cpu_s = asDouble(*c);
            if (const JsonValue *n = value.find("count"))
                p.count = asUint64(*n);
            snap.phases.emplace(name, p);
        }
    }
    if (const JsonValue *lats = requireObject(root, "latencies")) {
        for (const auto &[name, value] : lats->object) {
            requireSim(value.kind == JsonValue::Kind::Object,
                       "metrics JSON: latency must be an object");
            HistogramSnapshot h;
            if (const JsonValue *n = value.find("count"))
                h.count = asUint64(*n);
            if (const JsonValue *t = value.find("total_s"))
                h.total_s = asDouble(*t);
            if (const JsonValue *b = value.find("buckets")) {
                requireSim(b->kind == JsonValue::Kind::Array,
                           "metrics JSON: buckets must be an array");
                h.buckets.reserve(b->array.size());
                for (const JsonValue &e : b->array)
                    h.buckets.push_back(asUint64(e));
            }
            snap.latencies.emplace(name, h);
        }
    }
    return snap;
}

} // namespace metrics
} // namespace emstress
