/**
 * @file
 * Physical constants, unit helpers and dB conversions used across
 * emstress. All internal quantities are SI (seconds, hertz, volts,
 * amperes, ohms, henries, farads, watts).
 */

#ifndef EMSTRESS_UTIL_UNITS_H
#define EMSTRESS_UTIL_UNITS_H

#include <cmath>

namespace emstress {

/** Pi to double precision. */
inline constexpr double kPi = 3.14159265358979323846;

/** Two pi, the radian measure of a full turn. */
inline constexpr double kTwoPi = 2.0 * kPi;

/** Boltzmann constant [J/K], used for thermal noise floors. */
inline constexpr double kBoltzmann = 1.380649e-23;

/** Reference temperature [K] for noise calculations. */
inline constexpr double kRoomTempKelvin = 290.0;

/// @{ Multiplier helpers so literal parameters read like a datasheet.
inline constexpr double kilo(double v) { return v * 1e3; }
inline constexpr double mega(double v) { return v * 1e6; }
inline constexpr double giga(double v) { return v * 1e9; }
inline constexpr double milli(double v) { return v * 1e-3; }
inline constexpr double micro(double v) { return v * 1e-6; }
inline constexpr double nano(double v) { return v * 1e-9; }
inline constexpr double pico(double v) { return v * 1e-12; }
/// @}

/**
 * Convert a power ratio to decibels.
 * @param ratio Linear power ratio; must be positive.
 */
inline double
powerRatioToDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

/** Convert decibels to a linear power ratio. */
inline double
dbToPowerRatio(double db)
{
    return std::pow(10.0, db / 10.0);
}

/**
 * Convert a power in watts to dBm (decibels relative to 1 mW).
 * @param watts Power; must be positive (caller clamps at a noise
 *              floor before converting).
 */
inline double
wattsToDbm(double watts)
{
    return 10.0 * std::log10(watts / 1e-3);
}

/** Convert dBm to watts. */
inline double
dbmToWatts(double dbm)
{
    return 1e-3 * std::pow(10.0, dbm / 10.0);
}

/**
 * Power (watts) dissipated by an RMS voltage across a reference
 * impedance, the quantity a spectrum analyzer displays.
 */
inline double
voltsRmsToWatts(double vrms, double impedance_ohms)
{
    return vrms * vrms / impedance_ohms;
}

/**
 * Resonance frequency of a series/parallel LC tank: 1 / (2*pi*sqrt(LC)).
 */
inline double
lcResonanceHz(double inductance_h, double capacitance_f)
{
    return 1.0 / (kTwoPi * std::sqrt(inductance_h * capacitance_f));
}

/**
 * Solve the LC resonance relation for inductance given a target
 * frequency and capacitance. Used to calibrate PDN models against the
 * paper's measured resonance anchors.
 */
inline double
inductanceForResonance(double freq_hz, double capacitance_f)
{
    const double w = kTwoPi * freq_hz;
    return 1.0 / (w * w * capacitance_f);
}

/** Solve the LC resonance relation for capacitance. */
inline double
capacitanceForResonance(double freq_hz, double inductance_h)
{
    const double w = kTwoPi * freq_hz;
    return 1.0 / (w * w * inductance_h);
}

} // namespace emstress

#endif // EMSTRESS_UTIL_UNITS_H
