/**
 * @file
 * Deterministic random number generation. Every stochastic component
 * in emstress (GA operators, measurement noise, workload generators,
 * SDC classification) draws from an explicitly seeded Rng so that
 * experiments are exactly reproducible from a seed.
 */

#ifndef EMSTRESS_UTIL_RNG_H
#define EMSTRESS_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <span>

#include "util/error.h"

namespace emstress {

/**
 * splitmix64 finalizer: scrambles a 64-bit value into a well-mixed
 * seed. Used to derive independent noise streams from structural keys
 * (kernel hashes, sweep-point indices) so that a measurement's noise
 * depends only on *what* is measured, never on evaluation order —
 * the property that makes parallel evaluation bit-identical to
 * serial and makes fitness memoization lossless.
 */
inline std::uint64_t
mixSeed(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one well-mixed seed. */
inline std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    return mixSeed(a ^ mixSeed(b));
}

/**
 * Seeded pseudo-random source wrapping std::mt19937_64 with the
 * convenience draws the library needs. Cheap to copy; copies evolve
 * independently, which forks a reproducible sub-stream.
 */
class Rng
{
  public:
    /** Construct from an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Derive an independent child stream (e.g. one per GA island). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /** Uniform size_t index in [0, n). @pre n > 0. */
    std::size_t
    index(std::size_t n)
    {
        requireSim(n > 0, "Rng::index called with empty range");
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /** Gaussian draw with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Bernoulli draw: true with probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Pick a uniformly random element of a non-empty span. */
    template <typename T>
    const T &
    pick(std::span<const T> items)
    {
        return items[index(items.size())];
    }

    /** Underlying engine access for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace emstress

#endif // EMSTRESS_UTIL_RNG_H
