/**
 * @file
 * Out-of-line throw helpers for the literal-message require
 * overloads (see error.h): the cold exception construction lives
 * here so hot inlined checks stay a compare-and-branch.
 */

#include "util/error.h"

namespace emstress {

void
throwConfigError(const char *message)
{
    throw ConfigError(message);
}

void
throwSimulationError(const char *message)
{
    throw SimulationError(message);
}

} // namespace emstress
