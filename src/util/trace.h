/**
 * @file
 * Uniformly sampled time-series container. Traces are the lingua
 * franca between subsystems: the uarch emits a current trace, the PDN
 * transforms it into a voltage trace, instruments sample traces, and
 * the DSP layer turns traces into spectra.
 */

#ifndef EMSTRESS_UTIL_TRACE_H
#define EMSTRESS_UTIL_TRACE_H

#include <cmath>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/error.h"

namespace emstress {

/**
 * A uniformly sampled real-valued signal: samples plus the sampling
 * interval. Value-semantic and cheap to move.
 */
class Trace
{
  public:
    /** Empty trace with a sampling interval only. */
    explicit Trace(double dt_seconds) : dt_(dt_seconds)
    {
        requireConfig(dt_seconds > 0.0, "Trace dt must be positive");
    }

    /** Trace adopting an existing sample vector. */
    Trace(std::vector<double> samples, double dt_seconds)
        : samples_(std::move(samples)), dt_(dt_seconds)
    {
        requireConfig(dt_seconds > 0.0, "Trace dt must be positive");
    }

    /** Sampling interval in seconds. */
    double dt() const { return dt_; }

    /** Sampling rate in hertz. */
    double sampleRate() const { return 1.0 / dt_; }

    /** Number of samples. */
    std::size_t size() const { return samples_.size(); }

    /** True when the trace holds no samples. */
    bool empty() const { return samples_.empty(); }

    /** Total spanned time in seconds. */
    double duration() const { return dt_ * static_cast<double>(size()); }

    /** Read-only view of the samples. */
    std::span<const double> samples() const { return samples_; }

    /** Mutable access to the samples. */
    std::vector<double> &data() { return samples_; }

    /** Sample access. */
    double operator[](std::size_t i) const { return samples_[i]; }

    /** Mutable sample access. */
    double &operator[](std::size_t i) { return samples_[i]; }

    /** Append one sample. */
    void push(double v) { samples_.push_back(v); }

    /** Reserve capacity for n samples. */
    void reserve(std::size_t n) { samples_.reserve(n); }

    /** Timestamp of sample i in seconds. */
    double timeAt(std::size_t i) const
    {
        return dt_ * static_cast<double>(i);
    }

    /**
     * Extract a sub-trace covering [start_index, start_index + count).
     * @pre The range lies within the trace.
     */
    Trace
    slice(std::size_t start_index, std::size_t count) const
    {
        requireSim(start_index <= size()
                       && count <= size() - start_index,
                   "Trace::slice out of range");
        std::vector<double> out(samples_.begin() + start_index,
                                samples_.begin() + start_index + count);
        return Trace(std::move(out), dt_);
    }

    /**
     * Resample onto a new (finer or coarser) interval with zero-order
     * hold, the correct reconstruction for a piecewise-constant
     * quantity like per-cycle CPU current.
     */
    Trace
    resampleZeroOrderHold(double new_dt) const
    {
        requireConfig(new_dt > 0.0, "resample dt must be positive");
        Trace out(new_dt);
        if (empty())
            return out;
        const auto n_out = outputLengthFor(duration(), new_dt);
        out.reserve(n_out);
        for (std::size_t i = 0; i < n_out; ++i) {
            const double t = new_dt * static_cast<double>(i);
            auto src = static_cast<std::size_t>(t / dt_);
            if (src >= size())
                src = size() - 1;
            out.push(samples_[src]);
        }
        return out;
    }

    /**
     * Zero-order-hold output length for a duration / interval pair.
     * The quotient is snapped to the nearest integer when it is
     * integral up to floating-point rounding, so an exact-ratio
     * resample (e.g. 1 ns onto 0.25 ns) never drops its final sample
     * to a quotient like 3.9999999999999996.
     */
    static std::size_t
    outputLengthFor(double duration_s, double new_dt)
    {
        const double ratio = duration_s / new_dt;
        const double nearest = std::round(ratio);
        if (std::abs(ratio - nearest)
            <= 1e-9 * std::max(1.0, nearest))
            return static_cast<std::size_t>(nearest);
        return static_cast<std::size_t>(ratio);
    }

  private:
    std::vector<double> samples_;
    double dt_;
};

} // namespace emstress

#endif // EMSTRESS_UTIL_TRACE_H
