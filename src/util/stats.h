/**
 * @file
 * Small statistics helpers over contiguous samples: extrema, mean,
 * RMS, peak-to-peak, percentiles and a streaming accumulator.
 */

#ifndef EMSTRESS_UTIL_STATS_H
#define EMSTRESS_UTIL_STATS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "util/error.h"

namespace emstress {
namespace stats {

/** Arithmetic mean. @pre non-empty. */
inline double
mean(std::span<const double> xs)
{
    requireSim(!xs.empty(), "stats::mean of empty span");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Root mean square. @pre non-empty. */
inline double
rms(std::span<const double> xs)
{
    requireSim(!xs.empty(), "stats::rms of empty span");
    double s = 0.0;
    for (double x : xs)
        s += x * x;
    return std::sqrt(s / static_cast<double>(xs.size()));
}

/** Population variance. @pre non-empty. */
inline double
variance(std::span<const double> xs)
{
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size());
}

/** Population standard deviation. */
inline double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

/** Minimum element. @pre non-empty. */
inline double
minimum(std::span<const double> xs)
{
    requireSim(!xs.empty(), "stats::minimum of empty span");
    return *std::min_element(xs.begin(), xs.end());
}

/** Maximum element. @pre non-empty. */
inline double
maximum(std::span<const double> xs)
{
    requireSim(!xs.empty(), "stats::maximum of empty span");
    return *std::max_element(xs.begin(), xs.end());
}

/** Max minus min. @pre non-empty. */
inline double
peakToPeak(std::span<const double> xs)
{
    requireSim(!xs.empty(), "stats::peakToPeak of empty span");
    auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    return *hi - *lo;
}

/**
 * Linear-interpolated percentile over already-sorted samples: the
 * O(1)-per-query companion of percentile() for callers that sort
 * once and query many percentiles (e.g. the per-generation fitness
 * summary gauges in GaEngine).
 * @param sorted Samples in ascending order (checked in debug
 *               builds; undefined result if violated in release).
 * @param p      Percentile in [0, 100].
 */
inline double
percentileSorted(std::span<const double> sorted, double p)
{
    requireSim(!sorted.empty(), "stats::percentile of empty span");
    requireConfig(p >= 0.0 && p <= 100.0, "percentile outside [0,100]");
#ifndef NDEBUG
    requireSim(std::is_sorted(sorted.begin(), sorted.end()),
               "stats::percentileSorted needs ascending samples");
#endif
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(std::floor(rank));
    const auto hi_idx = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo_idx);
    return sorted[lo_idx] * (1.0 - frac) + sorted[hi_idx] * frac;
}

/**
 * Linear-interpolated percentile.
 * @param xs Samples (not required to be sorted; copied internally).
 *           Multi-percentile callers should sort once and use
 *           percentileSorted instead of paying the sort per query;
 *           the two agree bit-exactly (tests/test_util.cc).
 * @param p  Percentile in [0, 100].
 */
inline double
percentile(std::span<const double> xs, double p)
{
    requireSim(!xs.empty(), "stats::percentile of empty span");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return percentileSorted(sorted, p);
}

/**
 * Streaming accumulator (Welford) for mean/variance/extrema without
 * storing samples. Used by long transient simulations.
 */
class Running
{
  public:
    /** Fold one sample into the accumulator. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /** Number of samples folded in so far. */
    std::size_t count() const { return n_; }

    /** Running mean. @pre count() > 0. */
    double
    mean() const
    {
        requireSim(n_ > 0, "Running::mean with no samples");
        return mean_;
    }

    /** Running population variance. @pre count() > 0. */
    double
    variance() const
    {
        requireSim(n_ > 0, "Running::variance with no samples");
        return m2_ / static_cast<double>(n_);
    }

    /** Smallest sample seen. @pre count() > 0. */
    double
    minimum() const
    {
        requireSim(n_ > 0, "Running::minimum with no samples");
        return min_;
    }

    /** Largest sample seen. @pre count() > 0. */
    double
    maximum() const
    {
        requireSim(n_ > 0, "Running::maximum with no samples");
        return max_;
    }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace stats
} // namespace emstress

#endif // EMSTRESS_UTIL_STATS_H
