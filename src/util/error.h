/**
 * @file
 * Error handling for emstress: a library exception type plus
 * precondition helpers. Following the Core Guidelines, user-facing
 * configuration errors throw (recoverable by the caller) while
 * internal invariant violations assert.
 */

#ifndef EMSTRESS_UTIL_ERROR_H
#define EMSTRESS_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace emstress {

/**
 * Exception thrown on invalid user configuration or input (bad
 * netlist, malformed XML pool file, out-of-range parameter). Analogous
 * to gem5's fatal(): the condition is the caller's fault, not a bug.
 */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Exception thrown when a simulation cannot proceed (singular MNA
 * matrix, non-converging search). Carries enough context to report.
 */
class SimulationError : public std::runtime_error
{
  public:
    explicit SimulationError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Throw ConfigError unless a user-supplied condition holds.
 * @param cond    Condition that must be true.
 * @param message Explanation included in the exception.
 */
inline void
requireConfig(bool cond, const std::string &message)
{
    if (!cond)
        throw ConfigError(message);
}

/** Throw SimulationError unless a runtime condition holds. */
inline void
requireSim(bool cond, const std::string &message)
{
    if (!cond)
        throw SimulationError(message);
}

} // namespace emstress

#endif // EMSTRESS_UTIL_ERROR_H
