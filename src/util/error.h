/**
 * @file
 * Error handling for emstress: a library exception type plus
 * precondition helpers. Following the Core Guidelines, user-facing
 * configuration errors throw (recoverable by the caller) while
 * internal invariant violations assert.
 */

#ifndef EMSTRESS_UTIL_ERROR_H
#define EMSTRESS_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace emstress {

/**
 * Exception thrown on invalid user configuration or input (bad
 * netlist, malformed XML pool file, out-of-range parameter). Analogous
 * to gem5's fatal(): the condition is the caller's fault, not a bug.
 */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Exception thrown when a simulation cannot proceed (singular MNA
 * matrix, non-converging search). Carries enough context to report.
 */
class SimulationError : public std::runtime_error
{
  public:
    explicit SimulationError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Throw ConfigError unless a user-supplied condition holds.
 * @param cond    Condition that must be true.
 * @param message Explanation included in the exception.
 */
inline void
requireConfig(bool cond, const std::string &message)
{
    if (!cond) [[unlikely]]
        throw ConfigError(message);
}

/// @{ Out-of-line throw helpers: keeping the (cold) construction and
/// throw of the exception out of the inlined check both shrinks hot
/// callers and sidesteps a GCC 12 -Warray-bounds false positive when
/// a caller's guarded container access is constant-folded.
[[noreturn]] void throwConfigError(const char *message);
[[noreturn]] void throwSimulationError(const char *message);
/// @}

/**
 * Literal-message overload: checks on hot paths (the transient
 * stepper, per-sample sink pushes, per-instruction pool lookups) run
 * millions of times per simulated second, and the const-std::string&
 * form would construct — i.e. heap-allocate — a temporary on every
 * *passing* call. This overload builds the string only on failure.
 */
inline void
requireConfig(bool cond, const char *message)
{
    if (!cond) [[unlikely]]
        throwConfigError(message);
}

/** Throw SimulationError unless a runtime condition holds. */
inline void
requireSim(bool cond, const std::string &message)
{
    if (!cond) [[unlikely]]
        throw SimulationError(message);
}

/** Literal-message overload; see requireConfig(bool, const char*). */
inline void
requireSim(bool cond, const char *message)
{
    if (!cond) [[unlikely]]
        throwSimulationError(message);
}

} // namespace emstress

#endif // EMSTRESS_UTIL_ERROR_H
