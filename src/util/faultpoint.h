/**
 * @file
 * Deterministic fault injection for the modeled lab link. The paper's
 * GA drives a physical bench — a target board behind a flaky
 * connection, a spectrum analyzer, an on-chip DSO — where hung
 * kernels, dropped sample streams and glitched readings are routine.
 * This header names those failure modes (FaultPoint), gives them a
 * *seeded, schedule-free* occurrence model (FaultSchedule), and
 * defines the exception (FaultError) and retry policy (RetryPolicy)
 * the evaluation pipeline uses to recover from them.
 *
 * Determinism contract: whether a fault fires at a given point is a
 * pure function of (fault point, structural key, attempt number,
 * schedule seed) — never of wall-clock time, thread scheduling or
 * how many faults fired before. Two consequences the test suite
 * relies on:
 *  - replay-from-seed: a failing run reproduces exactly from its
 *    schedule seed, at any thread count;
 *  - convergence under retries: once retries succeed, results are
 *    bit-identical to a run with no schedule installed, because the
 *    evaluators derive measurement noise from the kernel key, not
 *    from global RNG state a discarded attempt could perturb.
 */

#ifndef EMSTRESS_UTIL_FAULTPOINT_H
#define EMSTRESS_UTIL_FAULTPOINT_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <string>

#include "util/error.h"
#include "util/rng.h"
#include "util/sample_sink.h"

namespace emstress {

/** Named failure modes of the host-target-instrument loop. */
enum class FaultPoint : std::uint8_t
{
    ConnectionTimeout = 0, ///< Target unreachable while deploying.
    KernelHang,            ///< Deployed kernel never starts/answers.
    TruncatedStream,       ///< Sample stream drops out mid-capture.
    GlitchedReading,       ///< Analyzer returns a corrupt marker.
    TriggerMiss,           ///< Scope never triggers on the run.
};

/** Number of distinct fault points. */
inline constexpr std::size_t kFaultPointCount = 5;

/** Human-readable fault-point name. */
inline const char *
faultPointName(FaultPoint p)
{
    switch (p) {
      case FaultPoint::ConnectionTimeout:
        return "connection-timeout";
      case FaultPoint::KernelHang:
        return "kernel-hang";
      case FaultPoint::TruncatedStream:
        return "truncated-stream";
      case FaultPoint::GlitchedReading:
        return "glitched-reading";
      case FaultPoint::TriggerMiss:
        return "trigger-miss";
    }
    return "unknown-fault";
}

/**
 * Exception thrown when an injected fault fires. Subclasses
 * SimulationError so existing catch sites keep working; the retry
 * machinery catches FaultError *specifically* so that genuine
 * simulation bugs still propagate instead of being retried away.
 */
class FaultError : public SimulationError
{
  public:
    FaultError(FaultPoint point, std::uint64_t key,
               std::uint32_t attempt, double cost_seconds)
        : SimulationError(format(point, key, attempt, cost_seconds)),
          point_(point), key_(key), attempt_(attempt),
          cost_seconds_(cost_seconds)
    {}

    /** Which fault point fired. */
    FaultPoint point() const { return point_; }

    /** Structural key (kernel hash) of the faulted operation. */
    std::uint64_t key() const { return key_; }

    /** Attempt number (0-based) the fault hit. */
    std::uint32_t attempt() const { return attempt_; }

    /** Modeled lab seconds wasted before the fault was detected. */
    double costSeconds() const { return cost_seconds_; }

  private:
    static std::string
    format(FaultPoint point, std::uint64_t key, std::uint32_t attempt,
           double cost_seconds)
    {
        std::ostringstream os;
        os << "injected " << faultPointName(point) << " fault (key=0x"
           << std::hex << key << std::dec << ", attempt " << attempt
           << ", " << cost_seconds << " lab s lost)";
        return os.str();
    }

    FaultPoint point_;
    std::uint64_t key_;
    std::uint32_t attempt_;
    double cost_seconds_;
};

/** Per-fault-point occurrence probabilities in [0, 1]. */
struct FaultRates
{
    std::array<double, kFaultPointCount> rate{};

    double &
    operator[](FaultPoint p)
    {
        return rate[static_cast<std::size_t>(p)];
    }

    double
    operator[](FaultPoint p) const
    {
        return rate[static_cast<std::size_t>(p)];
    }

    /** Same probability at every fault point. */
    static FaultRates
    uniform(double p)
    {
        FaultRates r;
        r.rate.fill(p);
        return r;
    }

    /** True when any point can fire at all. */
    bool
    any() const
    {
        for (const double v : rate)
            if (v > 0.0)
                return true;
        return false;
    }
};

/**
 * Seeded fault schedule: decides, as a pure function, whether a
 * fault fires at (point, key, attempt). The decision hash chains
 * mixSeed over the schedule seed, the fault point, the structural
 * key and the attempt number — the same discipline the fitness
 * evaluators use for measurement noise — so the schedule is
 * independent of evaluation order and thread count, and a failing
 * run replays exactly from its seed.
 */
class FaultSchedule
{
  public:
    FaultSchedule(std::uint64_t seed, const FaultRates &rates)
        : seed_(seed), rates_(rates)
    {
        for (const double v : rates_.rate)
            requireConfig(v >= 0.0 && v <= 1.0,
                          "fault rates must lie in [0, 1]");
    }

    /** Schedule seed (replay handle). */
    std::uint64_t seed() const { return seed_; }

    /** Occurrence probabilities. */
    const FaultRates &rates() const { return rates_; }

    /**
     * Uniform [0, 1) draw for (point, key, attempt, salt) — pure and
     * reproducible. Salt 0 is the occurrence draw; other salts give
     * independent streams for fault parameters (e.g. where a stream
     * truncates).
     */
    double
    unitDraw(FaultPoint point, std::uint64_t key,
             std::uint32_t attempt, std::uint64_t salt = 0) const
    {
        const std::uint64_t lane =
            (static_cast<std::uint64_t>(point) + 1)
            * 0x9e3779b97f4a7c15ull;
        const std::uint64_t ctx =
            (static_cast<std::uint64_t>(attempt) << 32) ^ salt;
        const std::uint64_t h =
            mixSeed(seed_ ^ lane, mixSeed(key, ctx));
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    }

    /** Does this fault point fire at (key, attempt)? */
    bool
    fires(FaultPoint point, std::uint64_t key,
          std::uint32_t attempt) const
    {
        const double p = rates_[point];
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return unitDraw(point, key, attempt) < p;
    }

  private:
    std::uint64_t seed_;
    FaultRates rates_;
};

/**
 * Retry policy for faulted operations: bounded attempts with
 * exponential backoff. Backoff is charged as *modeled lab seconds*
 * (the time a real bench would sit waiting before re-trying), never
 * slept on the host — tests with aggressive fault rates stay fast.
 */
struct RetryPolicy
{
    std::uint32_t max_attempts = 4; ///< Total tries per operation.
    double backoff_s = 0.5;         ///< Wait before the 1st retry.
    double backoff_factor = 2.0;    ///< Growth per further retry.
    double backoff_cap_s = 8.0;     ///< Ceiling on a single wait.

    /**
     * Modeled wait before retry number `retry_index` (1-based: the
     * retry after the first failure is index 1).
     */
    double
    backoffFor(std::uint32_t retry_index) const
    {
        double b = backoff_s;
        for (std::uint32_t i = 1; i < retry_index; ++i) {
            b *= backoff_factor;
            if (b >= backoff_cap_s)
                return backoff_cap_s;
        }
        return std::min(b, backoff_cap_s);
    }
};

/**
 * Sink that models a sample stream dropping out: passes the first
 * `cutoff` samples downstream, then throws the configured FaultError
 * from push(). Inserted ahead of an instrument sink it exercises
 * mid-stream unwinding of Platform::streamKernel; a cutoff at or
 * past the stream length never fires.
 */
class TruncatingSink final : public SampleSink
{
  public:
    TruncatingSink(SampleSink &downstream, std::size_t cutoff,
                   FaultError fault)
        : downstream_(downstream), cutoff_(cutoff),
          fault_(std::move(fault))
    {}

    /** Samples passed downstream so far. */
    std::size_t delivered() const { return delivered_; }

    void
    push(double v) override
    {
        if (delivered_ >= cutoff_)
            throw fault_;
        downstream_.push(v);
        ++delivered_;
    }

    void finish() override { downstream_.finish(); }

  private:
    SampleSink &downstream_;
    std::size_t cutoff_;
    FaultError fault_;
    std::size_t delivered_ = 0;
};

} // namespace emstress

#endif // EMSTRESS_UTIL_FAULTPOINT_H
