/**
 * @file
 * Console table and CSV emission. The benchmark harness prints the
 * paper's tables/series through these writers so every experiment has
 * both a human-readable and a machine-readable output.
 */

#ifndef EMSTRESS_UTIL_TABLE_H
#define EMSTRESS_UTIL_TABLE_H

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace emstress {

/**
 * Accumulates rows of strings/numbers and renders them as an aligned
 * console table or a CSV file.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
        requireConfig(!headers_.empty(), "Table needs at least one column");
    }

    /** Begin a new row. */
    Table &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    /** Append a string cell to the current row. */
    Table &
    cell(const std::string &value)
    {
        requireSim(!rows_.empty(), "Table::cell before Table::row");
        rows_.back().push_back(value);
        return *this;
    }

    /** Append a numeric cell with a fixed number of decimals. */
    Table &
    cell(double value, int decimals = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(decimals) << value;
        return cell(os.str());
    }

    /** Append an integer cell. */
    Table &
    cell(long value)
    {
        return cell(std::to_string(value));
    }

    /** Number of data rows accumulated. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render as an aligned plain-text table. */
    std::string
    toText() const
    {
        std::vector<std::size_t> widths(headers_.size(), 0);
        for (std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], r[c].size());

        std::ostringstream os;
        auto emit_row = [&](const std::vector<std::string> &r) {
            for (std::size_t c = 0; c < widths.size(); ++c) {
                const std::string &v = c < r.size() ? r[c] : std::string();
                os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                   << v;
            }
            os << '\n';
        };
        emit_row(headers_);
        std::string rule;
        for (std::size_t c = 0; c < widths.size(); ++c)
            rule += std::string(widths[c], '-') + "  ";
        os << rule << '\n';
        for (const auto &r : rows_)
            emit_row(r);
        return os.str();
    }

    /** Render as CSV text. */
    std::string
    toCsv() const
    {
        std::ostringstream os;
        auto emit_row = [&](const std::vector<std::string> &r) {
            for (std::size_t c = 0; c < r.size(); ++c) {
                if (c)
                    os << ',';
                os << escape(r[c]);
            }
            os << '\n';
        };
        emit_row(headers_);
        for (const auto &r : rows_)
            emit_row(r);
        return os.str();
    }

    /** Write the CSV rendering to a file. */
    void
    writeCsv(const std::string &path) const
    {
        std::ofstream f(path);
        requireConfig(f.good(), "cannot open CSV output: " + path);
        f << toCsv();
    }

    /** Print the text rendering to stdout with a title banner. */
    void
    print(const std::string &title) const
    {
        std::cout << "\n== " << title << " ==\n" << toText();
    }

  private:
    static std::string
    escape(const std::string &v)
    {
        if (v.find_first_of(",\"\n") == std::string::npos)
            return v;
        std::string out = "\"";
        for (char ch : v) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace emstress

#endif // EMSTRESS_UTIL_TABLE_H
