/**
 * @file
 * Hot-kernel dispatch helpers.
 *
 * EMSTRESS_TARGET_CLONES marks a function for ISA function
 * multiversioning: the compiler emits one body per listed target
 * (here AVX2 plus the baseline) and an ifunc resolver picks the
 * widest one the CPU supports at load time.
 *
 * This is only applied to kernels whose vector lanes carry
 * *independent* elements (one Goertzel bin per lane, one state row
 * per lane). Widening the vector changes how many independent
 * recurrences advance per instruction, never the order of operations
 * within any one of them — so every clone produces bit-identical
 * results and the determinism contract (identical output across
 * machines, thread counts, and replay) is preserved. Do not use it
 * on reductions or anything whose FP association depends on lane
 * count.
 *
 * FMA is intentionally *not* in the clone list: fused multiply-add
 * contracts a*b+c into one rounding, which would make AVX2 hosts
 * disagree with baseline ones bit-for-bit.
 */

#ifndef EMSTRESS_UTIL_HOTPATH_H
#define EMSTRESS_UTIL_HOTPATH_H

/* ThreadSanitizer initializes after ifunc resolvers run, and the
 * resolver emitted for target_clones segfaults under its runtime
 * (reproduced with gcc 12: any TSan binary containing a clone
 * crashes before main). Every clone is bit-identical to the
 * baseline by contract, so dropping the dispatch under TSan changes
 * performance only, never results. */
#if defined(__SANITIZE_THREAD__)
#define EMSTRESS_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EMSTRESS_TSAN_ACTIVE 1
#endif
#endif

#if defined(__x86_64__) && defined(__gnu_linux__) \
    && (defined(__GNUC__) || defined(__clang__)) \
    && !defined(EMSTRESS_TSAN_ACTIVE)
#define EMSTRESS_TARGET_CLONES \
    __attribute__((target_clones("avx2", "default")))
#else
#define EMSTRESS_TARGET_CLONES
#endif

#endif // EMSTRESS_UTIL_HOTPATH_H
