/**
 * @file
 * Cooperative cancellation primitive shared by the GA batch
 * evaluator, the worker fleet and the search service. A CancelToken
 * is a read-only view of a flag owned by whoever may cancel (a job's
 * scheduler entry, a test); holders poll it at safe points and drain
 * without side effects once it fires. Null tokens mean "never
 * cancelled", so batch-era callers pay nothing.
 */

#ifndef EMSTRESS_UTIL_CANCELLATION_H
#define EMSTRESS_UTIL_CANCELLATION_H

#include <atomic>
#include <memory>

namespace emstress {

/**
 * Read-only cancellation flag shared between a job's controller and
 * the evaluation machinery running on its behalf.
 */
using CancelToken = std::shared_ptr<const std::atomic<bool>>;

/** Make the writable flag behind a CancelToken (starts unfired). */
inline std::shared_ptr<std::atomic<bool>>
makeCancelFlag()
{
    return std::make_shared<std::atomic<bool>>(false);
}

} // namespace emstress

#endif // EMSTRESS_UTIL_CANCELLATION_H
