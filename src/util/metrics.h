/**
 * @file
 * Process-wide observability: a thread-safe metrics registry
 * (counters, gauges, latency histograms with fixed deterministic
 * bucket edges) plus RAII phase-scoped timers recording wall and
 * per-thread CPU time.
 *
 * Metrics are strictly out-of-band of the simulation: nothing read
 * from a clock or the registry may feed fitness, ranking, RNG state
 * or any other replayed result, so every GA/measurement outcome is
 * bit-identical with metrics enabled or disabled at any thread
 * count (tests/test_ga.cc pins this). This header is the sanctioned
 * home for wall/CPU clock reads — emstress-lint R1 exempts clock
 * identifiers here, exactly as util/rng.h is the sanctioned home
 * for randomness. Ad-hoc timing elsewhere still needs an explicit
 * `// lint: timing-stats` annotation.
 *
 * Recording is gated on enabled(): EMSTRESS_METRICS=0 turns the
 * registry into a no-op (setEnabled() overrides programmatically).
 * Snapshots serialize to the BENCH_perf.json schema documented in
 * EXPERIMENTS.md ("Perf baselines").
 */

#ifndef EMSTRESS_UTIL_METRICS_H
#define EMSTRESS_UTIL_METRICS_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ctime>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace emstress {
namespace metrics {

// ---------------------------------------------------- clock access

/** Monotonic wall-clock seconds since an arbitrary epoch. */
inline double
monotonicSeconds()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch())
        .count();
}

/**
 * CPU seconds consumed by the calling thread (0 where the platform
 * offers no per-thread CPU clock).
 */
inline double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec)
        + 1e-9 * static_cast<double>(ts.tv_nsec);
#else
    return 0.0;
#endif
}

// --------------------------------------------------------- gating

/** True when the registry records (EMSTRESS_METRICS != "0"). */
bool enabled();

/** Override the environment gate (test/bench hook). */
void setEnabled(bool on);

// ------------------------------------------------------ snapshots

/** Accumulated timing of one named phase. */
struct PhaseStats
{
    double wall_s = 0.0;     ///< Total wall time across entries.
    double cpu_s = 0.0;      ///< Total per-thread CPU time.
    std::uint64_t count = 0; ///< Times the phase was entered.
};

/**
 * Fixed-edge latency histogram policy. Edges are exact binary
 * doublings of 100 ns — bucketEdge(i) = 1e-7 * 2^i seconds — so the
 * bucket layout never depends on the data, the run or the host:
 * histograms from any two runs are directly comparable bucket by
 * bucket. Bucket b counts samples in [bucketEdge(b-1), bucketEdge(b))
 * with bucket 0 open below and the last bucket open above.
 */
struct LatencyBuckets
{
    /** Finite edges (100 ns up to ~13.4 s). */
    static constexpr std::size_t kFiniteEdges = 28;
    /** Buckets, including the open-ended overflow bucket. */
    static constexpr std::size_t kBuckets = kFiniteEdges + 1;

    /** Edge i in seconds: exactly 1e-7 * 2^i. @pre i < kFiniteEdges */
    static double
    bucketEdge(std::size_t i)
    {
        return 1e-7 * static_cast<double>(std::uint64_t{1} << i);
    }

    /** Bucket index for a sample: the number of edges <= seconds. */
    static std::size_t
    bucketFor(double seconds)
    {
        std::size_t b = 0;
        while (b < kFiniteEdges && seconds >= bucketEdge(b))
            ++b;
        return b;
    }
};

/** One latency histogram's state. */
struct HistogramSnapshot
{
    std::uint64_t count = 0; ///< Samples recorded.
    double total_s = 0.0;    ///< Sum of recorded seconds.
    /// Per-bucket sample counts (LatencyBuckets::kBuckets wide).
    std::vector<std::uint64_t> buckets;

    bool
    operator==(const HistogramSnapshot &o) const
    {
        return count == o.count && total_s == o.total_s
            && buckets == o.buckets;
    }
};

/**
 * A point-in-time copy of the registry. std::map keys make every
 * serialization deterministic regardless of the registration or
 * scheduling order that produced the values.
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, PhaseStats> phases;
    std::map<std::string, HistogramSnapshot> latencies;

    /** True when nothing has been recorded. */
    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && phases.empty()
            && latencies.empty();
    }
};

// ------------------------------------------------------- registry

/**
 * Process-wide metrics registry. Every mutator is thread-safe (one
 * mutex; the instrumented call sites are per-phase or per-batch, not
 * per-sample, so contention is negligible) and a no-op while
 * disabled.
 */
class Registry
{
  public:
    /** The process-wide instance. */
    static Registry &instance();

    /** Add to a monotonic counter. */
    void add(std::string_view counter, std::uint64_t delta = 1);

    /** Set a gauge (last write wins). */
    void setGauge(std::string_view name, double value);

    /** Fold one phase entry into the named phase accumulator. */
    void recordPhase(std::string_view name, double wall_s,
                     double cpu_s);

    /** Fold one sample into the named latency histogram. */
    void recordLatency(std::string_view name, double seconds);

    /** Copy the current state. */
    MetricsSnapshot snapshot() const;

    /** Drop all recorded state (test/bench hook). */
    void reset();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    // guards: mutex_
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    // guards: mutex_
    std::map<std::string, double, std::less<>> gauges_;
    // guards: mutex_
    std::map<std::string, PhaseStats, std::less<>> phases_;
    // guards: mutex_
    std::map<std::string, HistogramSnapshot, std::less<>> latencies_;
};

/**
 * RAII phase timer: measures the enclosing scope's wall and
 * per-thread CPU time and folds them into the registry's phase
 * accumulator on destruction. Costs two clock reads when metrics are
 * enabled and nothing at all when disabled.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(std::string_view name)
    {
        if (!enabled())
            return;
        active_ = true;
        name_.assign(name);
        wall0_ = monotonicSeconds();
        cpu0_ = threadCpuSeconds();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase()
    {
        if (!active_)
            return;
        Registry::instance().recordPhase(
            name_, monotonicSeconds() - wall0_,
            threadCpuSeconds() - cpu0_);
    }

  private:
    bool active_ = false;
    std::string name_;
    double wall0_ = 0.0;
    double cpu0_ = 0.0;
};

// ------------------------------------------------- serialization

/** Serialize a snapshot to JSON (keys in deterministic order). */
std::string toJson(const MetricsSnapshot &snap);

/**
 * Serialize the BENCH_perf.json ledger of one bench run:
 * `{schema, bench, mode, threads, phases, counters, gauges,
 * latencies}` (EXPERIMENTS.md "Perf baselines").
 */
std::string benchPerfJson(const std::string &bench,
                          const std::string &mode,
                          std::size_t threads,
                          const MetricsSnapshot &snap);

/**
 * Parse a snapshot back from toJson() or benchPerfJson() output
 * (extra header keys are ignored). Round-trips bit-exactly.
 * @throws SimulationError on malformed input.
 */
MetricsSnapshot parseSnapshotJson(const std::string &json);

} // namespace metrics
} // namespace emstress

#endif // EMSTRESS_UTIL_METRICS_H
