/**
 * @file
 * Streaming sample sinks. A SampleSink consumes a uniformly sampled
 * signal one value at a time, so producer stages (core model, PDN
 * stepper, antenna) can feed observer stages (instruments, traces)
 * without ever materializing a full-duration buffer. Trace remains
 * the batch container; TraceSink bridges the two worlds.
 *
 * Contract: the producer calls push() once per sample in time order,
 * then finish() exactly once. A transforming sink flushes any held
 * tail samples downstream inside its own finish() and then cascades
 * finish() to its downstream sink, so a single finish() at the head
 * of a chain drains the whole pipeline.
 */

#ifndef EMSTRESS_UTIL_SAMPLE_SINK_H
#define EMSTRESS_UTIL_SAMPLE_SINK_H

#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/trace.h"

namespace emstress {

/** Consumer of a uniformly sampled streaming signal. */
class SampleSink
{
  public:
    virtual ~SampleSink() = default;

    /** Consume the next sample. */
    virtual void push(double v) = 0;

    /**
     * Signal end-of-stream. Transforming sinks flush held samples
     * downstream and cascade finish() to their downstream sink.
     */
    virtual void finish() {}
};

/** Sink that discards every sample (placeholder observer). */
class NullSink final : public SampleSink
{
  public:
    void push(double) override {}
};

/** Batch bridge: collects the stream into a Trace. */
class TraceSink final : public SampleSink
{
  public:
    explicit TraceSink(double dt_seconds) : trace_(dt_seconds) {}

    void push(double v) override { trace_.push(v); }

    /** Reserve capacity when the sample count is known a priori. */
    void reserve(std::size_t n) { trace_.reserve(n); }

    /** The collected trace (valid any time; complete after finish). */
    const Trace &trace() const { return trace_; }

    /** Move the collected trace out. */
    Trace take() { return std::move(trace_); }

  private:
    Trace trace_;
};

/**
 * Running arithmetic mean with a plain left-to-right accumulation,
 * matching batch code that sums a vector front to back (bit-identical
 * to `std::accumulate / size`, unlike a Welford accumulator).
 */
class MeanSink final : public SampleSink
{
  public:
    void push(double v) override
    {
        sum_ += v;
        ++count_;
    }

    std::size_t count() const { return count_; }

    double
    mean() const
    {
        requireSim(count_ > 0, "MeanSink::mean on an empty stream");
        return sum_ / static_cast<double>(count_);
    }

  private:
    double sum_ = 0.0;
    std::size_t count_ = 0;
};

/**
 * Pass samples [skip, skip + count) downstream and drop the rest —
 * the streaming equivalent of Trace::slice for settle-time stripping.
 */
class SliceSink final : public SampleSink
{
  public:
    SliceSink(SampleSink &downstream, std::size_t skip,
              std::size_t count)
        : downstream_(downstream), skip_(skip), count_(count)
    {
    }

    void
    push(double v) override
    {
        if (seen_ >= skip_ && seen_ - skip_ < count_)
            downstream_.push(v);
        ++seen_;
    }

    void finish() override { downstream_.finish(); }

  private:
    SampleSink &downstream_;
    std::size_t skip_;
    std::size_t count_;
    std::size_t seen_ = 0;
};

/**
 * Streaming zero-order-hold rate conversion, sample-exact against
 * Trace::resampleZeroOrderHold for the same (n_in, dt_in, new_dt):
 * the output length comes from Trace::outputLengthFor and each output
 * sample j replays input index clamp(floor(new_dt * j / dt_in)).
 * The input length must be known a priori (it fixes the output
 * length and the tail clamp).
 */
class ZohResampleSink final : public SampleSink
{
  public:
    ZohResampleSink(SampleSink &downstream, std::size_t n_in,
                    double dt_in, double new_dt)
        : downstream_(downstream), n_in_(n_in), dt_in_(dt_in),
          new_dt_(new_dt)
    {
        requireConfig(new_dt > 0.0, "resample dt must be positive");
        requireConfig(n_in > 0,
                      "ZohResampleSink needs a non-empty input");
        n_out_ = Trace::outputLengthFor(
            dt_in * static_cast<double>(n_in), new_dt);
    }

    /** Output samples this stream will produce. */
    std::size_t outputSize() const { return n_out_; }

    void
    push(double v) override
    {
        last_ = v;
        while (next_out_ < n_out_ && srcIndex(next_out_) == seen_) {
            downstream_.push(v);
            ++next_out_;
        }
        ++seen_;
    }

    void
    finish() override
    {
        // Outputs whose source index clamps past the final input
        // sample hold its value.
        while (next_out_ < n_out_) {
            downstream_.push(last_);
            ++next_out_;
        }
        downstream_.finish();
    }

  private:
    std::size_t
    srcIndex(std::size_t j) const
    {
        const double t = new_dt_ * static_cast<double>(j);
        auto src = static_cast<std::size_t>(t / dt_in_);
        if (src >= n_in_)
            src = n_in_ - 1;
        return src;
    }

    SampleSink &downstream_;
    std::size_t n_in_;
    double dt_in_;
    double new_dt_;
    std::size_t n_out_ = 0;
    std::size_t next_out_ = 0;
    std::size_t seen_ = 0;
    double last_ = 0.0;
};

/** Replicate one stream to several downstream sinks. */
class FanoutSink final : public SampleSink
{
  public:
    /** Null entries are permitted and skipped. */
    explicit FanoutSink(std::vector<SampleSink *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    void
    push(double v) override
    {
        for (auto *s : sinks_)
            if (s != nullptr)
                s->push(v);
    }

    void
    finish() override
    {
        for (auto *s : sinks_)
            if (s != nullptr)
                s->finish();
    }

  private:
    std::vector<SampleSink *> sinks_;
};

} // namespace emstress

#endif // EMSTRESS_UTIL_SAMPLE_SINK_H
