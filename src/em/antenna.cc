/**
 * @file
 * Antenna model implementation.
 */

#include "em/antenna.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace em {

Antenna::Antenna(const AntennaParams &params) : params_(params)
{
    requireConfig(params.mutual_inductance > 0.0,
                  "mutual inductance must be positive");
    requireConfig(params.ref_distance > 0.0,
                  "reference distance must be positive");
    requireConfig(params.self_resonance_hz > 0.0,
                  "self resonance must be positive");
    requireConfig(params.loop_inductance > 0.0,
                  "loop inductance must be positive");
}

double
Antenna::couplingGain(double distance_m) const
{
    requireConfig(distance_m > 0.0, "antenna distance must be positive");
    const double ratio = params_.ref_distance / distance_m;
    const double cable = std::pow(
        10.0, -params_.cable_loss_db / 20.0); // voltage attenuation
    return params_.mutual_inductance * ratio * ratio * ratio * cable;
}

Trace
Antenna::receive(const Trace &i_loop, double distance_m) const
{
    requireConfig(i_loop.size() >= 2,
                  "antenna needs at least two current samples");
    const double gain = couplingGain(distance_m);
    const double inv_dt = 1.0 / i_loop.dt();
    Trace v(i_loop.dt());
    v.reserve(i_loop.size());
    // Central differences for dI/dt; one-sided at the ends.
    v.push(gain * (i_loop[1] - i_loop[0]) * inv_dt);
    for (std::size_t k = 1; k + 1 < i_loop.size(); ++k) {
        v.push(gain * (i_loop[k + 1] - i_loop[k - 1]) * 0.5 * inv_dt);
    }
    v.push(gain
           * (i_loop[i_loop.size() - 1] - i_loop[i_loop.size() - 2])
           * inv_dt);
    return v;
}

AntennaReceiveSink::AntennaReceiveSink(SampleSink &downstream,
                                       double gain, double dt)
    : downstream_(downstream), gain_(gain), inv_dt_(1.0 / dt)
{
}

void
AntennaReceiveSink::push(double i_loop)
{
    if (count_ == 0) {
        prev1_ = i_loop;
    } else if (count_ == 1) {
        // One-sided forward difference at the left edge.
        downstream_.push(gain_ * (i_loop - prev1_) * inv_dt_);
        prev2_ = prev1_;
        prev1_ = i_loop;
    } else {
        // Central difference for the interior sample k - 1.
        downstream_.push(gain_ * (i_loop - prev2_) * 0.5 * inv_dt_);
        prev2_ = prev1_;
        prev1_ = i_loop;
    }
    ++count_;
}

void
AntennaReceiveSink::finish()
{
    if (!finished_) {
        requireConfig(count_ >= 2,
                      "antenna needs at least two current samples");
        // One-sided backward difference at the right edge.
        downstream_.push(gain_ * (prev1_ - prev2_) * inv_dt_);
    }
    finished_ = true;
    downstream_.finish();
}

AntennaReceiveSink
Antenna::receiveInto(SampleSink &downstream, double distance_m,
                     double dt_seconds) const
{
    requireConfig(dt_seconds > 0.0,
                  "antenna stream needs a positive timestep");
    return AntennaReceiveSink(downstream, couplingGain(distance_m),
                              dt_seconds);
}

Trace
Antenna::receiveMulti(const std::vector<Trace> &i_loops,
                      const std::vector<double> &distances) const
{
    requireConfig(!i_loops.empty(), "receiveMulti needs input traces");
    requireConfig(i_loops.size() == distances.size(),
                  "one distance per radiating domain required");
    const double dt = i_loops.front().dt();
    std::size_t max_len = 0;
    for (const auto &t : i_loops) {
        requireConfig(std::abs(t.dt() - dt) < 1e-18 * (1.0 + dt),
                      "all domain traces must share the timestep");
        max_len = std::max(max_len, t.size());
    }

    Trace sum(dt);
    sum.data().assign(max_len, 0.0);
    for (std::size_t d = 0; d < i_loops.size(); ++d) {
        const Trace v = receive(i_loops[d], distances[d]);
        for (std::size_t k = 0; k < v.size(); ++k)
            sum[k] += v[k];
    }
    return sum;
}

double
Antenna::parasiticCapacitance() const
{
    return capacitanceForResonance(params_.self_resonance_hz,
                                   params_.loop_inductance);
}

std::vector<double>
Antenna::s11Magnitude(const std::vector<double> &freqs_hz) const
{
    // Antenna port as a series R(f)-L-C resonator referenced to Z0.
    // Below resonance the reactance dominates (|S11| ~ 1, flat); at
    // the self-resonance the reactances cancel and the radiation
    // resistance produces the return-loss dip of Fig. 6.
    const double z0 = 50.0;
    const double c_par = parasiticCapacitance();
    const double f_sr = params_.self_resonance_hz;

    std::vector<double> out;
    out.reserve(freqs_hz.size());
    for (double f : freqs_hz) {
        const double w = kTwoPi * f;
        const double fr = f / f_sr;
        // Small-loop radiation resistance scales as f^4.
        const double r = params_.loss_resistance
            + params_.radiation_resistance_sr * fr * fr * fr * fr;
        const std::complex<double> z(
            r, w * params_.loop_inductance - 1.0 / (w * c_par));
        const std::complex<double> gamma = (z - z0) / (z + z0);
        out.push_back(std::abs(gamma));
    }
    return out;
}

} // namespace em
} // namespace emstress
