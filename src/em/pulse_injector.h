/**
 * @file
 * Active EM fault-injection pulse model — the inverse of the antenna
 * receive path. A probe tip positioned over the die grid couples a
 * short, high-amplitude current transient into the die supply node;
 * the PDN transient solver then propagates the disturbance exactly
 * like any other current source ("EM-Fault It Yourself", Proy et al.
 * in PAPERS.md model the injected fault at this electrical level
 * before it becomes ISA-visible).
 *
 * The model is deliberately simple and exactly reproducible: a pulse
 * is a pure function of its spec and of simulation time. The same
 * spec evaluated at the same timestamps yields bit-identical currents
 * on every path (batch run(), streaming sink, any thread count) —
 * the property the EMFI campaign replay contract builds on.
 */

#ifndef EMSTRESS_EM_PULSE_INJECTOR_H
#define EMSTRESS_EM_PULSE_INJECTOR_H

#include <cstdint>

#include "circuit/transient.h"

namespace emstress {
namespace em {

/** Temporal envelope of an injected pulse. */
enum class PulseShape : std::uint8_t
{
    kRect = 0,     ///< Flat top over [t0, t0 + width).
    kGaussian = 1, ///< Gaussian centered in the support window.
};

/** Display name of a pulse shape. */
const char *pulseShapeName(PulseShape shape);

/**
 * One injection pulse: where the probe sits over the die, when the
 * pulse fires relative to the observed window, and its electrical
 * envelope. Amplitude 0 is the well-defined "no pulse" spec — see
 * PulseInjector::isNull.
 */
struct PulseSpec
{
    double t0_s = 0.0;        ///< Pulse start in the observed window [s].
    double width_s = 10e-9;   ///< Support width [s] (> 0).
    double amplitude_a = 0.0; ///< Peak injected current magnitude [A].
    double polarity = 1.0;    ///< +1 draws current (droop), -1 injects.
    double x = 0.5;           ///< Probe position on the unit die grid.
    double y = 0.5;           ///< Probe position on the unit die grid.
    PulseShape shape = PulseShape::kRect;
};

/**
 * Evaluates a PulseSpec as a current waveform and derived quantities.
 *
 * Exactness contract: currentAt returns exactly 0.0 for a
 * zero-amplitude spec and for any time outside the pulse support, so
 * an injector only perturbs the samples its support covers — the
 * superposition property tests pin this.
 */
class PulseInjector
{
  public:
    /**
     * Validate and bind a spec.
     * @throws ConfigError on non-positive width, negative amplitude,
     *         polarity outside {+1, -1} or a probe position off the
     *         unit grid.
     */
    explicit PulseInjector(const PulseSpec &spec);

    /** The bound spec. */
    const PulseSpec &spec() const { return spec_; }

    /** True for the amplitude-0 spec: injects nothing anywhere. */
    bool isNull() const { return spec_.amplitude_a == 0.0; }

    /**
     * Spatial coupling efficiency of the probe position into the die
     * supply grid, in (0, 1]: strongest over the die center (where
     * the package feed concentrates the return path), falling off as
     * a Gaussian with distance. Never exactly zero — a misplaced
     * probe couples weakly, not "not at all".
     */
    double couplingGain() const;

    /**
     * Injected current at a time measured in the pulse's own frame
     * [A]. Exactly 0.0 outside [t0, t0 + width) and for a null spec.
     */
    double currentAt(double t_s) const;

    /**
     * The pulse as a transient-solver source waveform. The offset
     * shifts the pulse frame into simulation time: a platform run
     * discards a settle lead-in, so a pulse at t0 in the *observed*
     * window fires at t0 + offset in *simulation* time.
     */
    circuit::SourceWaveform waveform(double offset_s = 0.0) const;

    /**
     * Energy the pulse deposits into a 1-ohm reference load [J]:
     * integral of the squared injected current over the support
     * (closed form per shape). The minimal-energy search minimizes
     * this.
     */
    double energyJoules() const;

  private:
    PulseSpec spec_;
    double peak_; ///< amplitude * polarity * couplingGain.
};

} // namespace em
} // namespace emstress

#endif // EMSTRESS_EM_PULSE_INJECTOR_H
