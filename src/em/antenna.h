/**
 * @file
 * EM front end: loop-antenna reception model and radiated-signal
 * synthesis from PDN currents.
 *
 * Physics (paper Section 2.2): on-chip interconnect and the
 * package/PCB current loop act as distributed transmitting antennae;
 * radiated power at a frequency varies quadratically with the
 * oscillatory current amplitude there. A nearby receiving loop picks
 * up an EMF proportional to the time derivative of the radiating loop
 * current (Faraday: v = -M dI/dt), which preserves exactly that
 * quadratic power relation and is what the spectrum analyzer sees.
 */

#ifndef EMSTRESS_EM_ANTENNA_H
#define EMSTRESS_EM_ANTENNA_H

#include <vector>

#include "util/sample_sink.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace em {

/**
 * Square-loop receiving antenna (3 cm side in the paper) with a
 * self-resonance well above the measurement band, plus the coupling
 * path from a radiating CPU current loop.
 */
struct AntennaParams
{
    /// Mutual inductance between the package current loop and the
    /// receive loop at the chosen placement [H]. Sets overall signal
    /// scale; falls off with distance cubed.
    double mutual_inductance = 0.5e-12;
    /// Reference placement distance for mutual_inductance [m].
    double ref_distance = 0.07;
    /// Antenna self-resonance frequency [Hz] (measured 2.95 GHz).
    double self_resonance_hz = giga(2.95);
    /// Loop inductance [H]; with self_resonance defines the parasitic
    /// capacitance.
    double loop_inductance = 120e-9;
    /// Series loss resistance [ohm].
    double loss_resistance = 1.5;
    /// Radiation resistance at the self-resonance [ohm]. A small
    /// loop's radiation resistance scales as f^4, so it is negligible
    /// in the 50-200 MHz measurement band and only shapes the S11
    /// dip at resonance.
    double radiation_resistance_sr = 40.0;
    /// Coax + connector loss [dB] between antenna and analyzer.
    double cable_loss_db = 1.0;
};

/**
 * Streaming counterpart of Antenna::receive: converts a pushed
 * radiating-loop current stream into the received voltage stream with
 * the same central/one-sided differences, holding only the last two
 * samples. Each received sample is forwarded one push late (the
 * central difference needs the next sample); finish() emits the final
 * backward-difference sample and cascades.
 */
class AntennaReceiveSink final : public SampleSink
{
  public:
    void push(double i_loop) override;
    void finish() override;

  private:
    friend class Antenna;
    AntennaReceiveSink(SampleSink &downstream, double gain, double dt);

    SampleSink &downstream_;
    double gain_;
    double inv_dt_;
    double prev2_ = 0.0; ///< i[k-2].
    double prev1_ = 0.0; ///< i[k-1].
    std::size_t count_ = 0;
    bool finished_ = false;
};

/**
 * Receiving antenna model.
 */
class Antenna
{
  public:
    /** Construct with parameters. */
    explicit Antenna(const AntennaParams &params);

    /** Parameters. */
    const AntennaParams &params() const { return params_; }

    /**
     * Convert a radiating-loop current trace into the received
     * voltage trace at the analyzer input.
     *
     * v(t) = M(d) * dI/dt * cable_attenuation, with M(d) scaled by
     * (ref_distance / distance)^3 — near-field loop coupling.
     *
     * @param i_loop     Radiating loop current [A].
     * @param distance_m Antenna-to-package distance [m].
     */
    Trace receive(const Trace &i_loop, double distance_m) const;

    /**
     * Build a streaming receive stage writing into a downstream sink,
     * sample-exact against receive() for the same current stream.
     *
     * @param downstream Sink consuming the received voltage.
     * @param distance_m Antenna-to-package distance [m].
     * @param dt_seconds Current-sample interval [s].
     */
    AntennaReceiveSink receiveInto(SampleSink &downstream,
                                   double distance_m,
                                   double dt_seconds) const;

    /**
     * Received voltage from several simultaneously radiating domains
     * (paper Section 6.1: one antenna sees every voltage domain).
     * All traces must share dt; shorter traces are treated as ending.
     *
     * @param i_loops    One radiating current per domain.
     * @param distances  Matching antenna distances.
     */
    Trace receiveMulti(const std::vector<Trace> &i_loops,
                       const std::vector<double> &distances) const;

    /**
     * |S11| of the antenna port versus frequency (Fig. 6): the loop
     * modeled as a series R(f)-L-C port referenced to 50 ohm, with
     * R(f) = loss + radiation resistance scaling as f^4. Poorly
     * matched and flat below ~1.2 GHz, dipping sharply at the
     * self-resonance where the reactances cancel and the antenna
     * actually accepts power.
     */
    std::vector<double>
    s11Magnitude(const std::vector<double> &freqs_hz) const;

    /** Parasitic capacitance implied by L and f_sr [F]. */
    double parasiticCapacitance() const;

  private:
    double couplingGain(double distance_m) const;

    AntennaParams params_;
};

} // namespace em
} // namespace emstress

#endif // EMSTRESS_EM_ANTENNA_H
