/**
 * @file
 * Pulse injector implementation.
 */

#include "em/pulse_injector.h"

#include <cmath>

#include "util/error.h"

namespace emstress {
namespace em {

namespace {

/// Spatial falloff of probe-to-grid coupling on the unit die grid.
constexpr double kCouplingSigma = 0.35;

/// Gaussian envelopes use sigma = width / kGaussianWidthSigmas, so
/// the truncated tails carry negligible (but exactly zero) current.
constexpr double kGaussianWidthSigmas = 6.0;

} // namespace

const char *
pulseShapeName(PulseShape shape)
{
    switch (shape) {
      case PulseShape::kRect:
        return "rect";
      case PulseShape::kGaussian:
        return "gaussian";
    }
    return "unknown";
}

PulseInjector::PulseInjector(const PulseSpec &spec) : spec_(spec)
{
    requireConfig(spec.width_s > 0.0, "pulse width must be positive");
    requireConfig(spec.amplitude_a >= 0.0,
                  "pulse amplitude must be non-negative");
    requireConfig(spec.polarity == 1.0 || spec.polarity == -1.0,
                  "pulse polarity must be +1 or -1");
    requireConfig(spec.x >= 0.0 && spec.x <= 1.0 && spec.y >= 0.0
                      && spec.y <= 1.0,
                  "pulse probe position must lie on the unit die grid");
    requireConfig(spec.t0_s >= 0.0,
                  "pulse start must not precede the observed window");
    peak_ = spec_.amplitude_a * spec_.polarity * couplingGain();
}

double
PulseInjector::couplingGain() const
{
    const double dx = spec_.x - 0.5;
    const double dy = spec_.y - 0.5;
    const double d2 = dx * dx + dy * dy;
    return std::exp(-d2 / (2.0 * kCouplingSigma * kCouplingSigma));
}

double
PulseInjector::currentAt(double t_s) const
{
    if (peak_ == 0.0)
        return 0.0;
    const double rel = t_s - spec_.t0_s;
    if (rel < 0.0 || rel >= spec_.width_s)
        return 0.0;
    if (spec_.shape == PulseShape::kRect)
        return peak_;
    const double sigma = spec_.width_s / kGaussianWidthSigmas;
    const double c = rel - spec_.width_s * 0.5;
    return peak_ * std::exp(-(c * c) / (2.0 * sigma * sigma));
}

circuit::SourceWaveform
PulseInjector::waveform(double offset_s) const
{
    // Copy the injector by value: the waveform must stay valid after
    // this injector dies (the PDN sink holds it across a whole run).
    const PulseInjector self = *this;
    return [self, offset_s](double t_s) {
        return self.currentAt(t_s - offset_s);
    };
}

double
PulseInjector::energyJoules() const
{
    const double peak2 = peak_ * peak_;
    if (spec_.shape == PulseShape::kRect)
        return peak2 * spec_.width_s;
    // Truncated-Gaussian squared integral: peak^2 * sigma * sqrt(pi)
    // * erf(half_width / (sigma * sqrt(2))).
    const double sigma = spec_.width_s / kGaussianWidthSigmas;
    const double half = spec_.width_s * 0.5;
    return peak2 * sigma * std::sqrt(std::acos(-1.0))
        * std::erf(half / (sigma * std::sqrt(2.0)));
}

} // namespace em
} // namespace emstress
