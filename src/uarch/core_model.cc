/**
 * @file
 * Core model implementation: a unified issue engine with renamed
 * dependencies that runs in either in-order or out-of-order
 * discipline, accumulating per-cycle switching energy.
 */

#include "uarch/core_model.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace emstress {
namespace uarch {

FuKind
fuKindForClass(isa::InstrClass cls)
{
    using C = isa::InstrClass;
    switch (cls) {
      case C::IntShort:    return FuKind::IntAlu;
      case C::IntLong:     return FuKind::IntMul;
      case C::FpShort:
      case C::FpLong:      return FuKind::Fp;
      case C::SimdShort:
      case C::SimdLong:    return FuKind::Simd;
      case C::Load:
      case C::Store:
      case C::IntShortMem:
      case C::IntLongMem:  return FuKind::Mem;
      case C::Branch:      return FuKind::BranchU;
    }
    return FuKind::IntAlu;
}

namespace {

/** Long-latency classes occupy their unit for the full latency. */
bool
isUnpipelined(isa::InstrClass cls)
{
    using C = isa::InstrClass;
    return cls == C::IntLong || cls == C::FpLong || cls == C::SimdLong
        || cls == C::IntLongMem;
}

/** Register-file index for the renaming table. */
std::size_t
regFileIndex(isa::RegFile file)
{
    switch (file) {
      case isa::RegFile::Int:  return 0;
      case isa::RegFile::Fp:   return 1;
      case isa::RegFile::Simd: return 2;
      case isa::RegFile::None: return 3;
    }
    return 3;
}

/** One dispatched, not-yet-issued instruction in the window. */
struct WindowEntry
{
    std::size_t slot;        ///< Index within the kernel/stream body.
    std::int64_t dyn_id;     ///< Dynamic instruction id.
    std::int64_t producer0;  ///< Dynamic id of src0 producer or -1.
    std::int64_t producer1;  ///< Dynamic id of src1 producer or -1.
};

} // namespace

unsigned
CoreParams::fuCount(FuKind kind) const
{
    switch (kind) {
      case FuKind::IntAlu:  return fu_int;
      case FuKind::IntMul:  return fu_int_mul;
      case FuKind::Fp:      return fu_fp;
      case FuKind::Simd:    return fu_simd;
      case FuKind::Mem:     return fu_mem;
      case FuKind::BranchU: return fu_branch;
    }
    return 1;
}

void
LoopRecording::emitInto(SampleSink &sink) const
{
    requireSim(complete(),
               "LoopRecording::emitInto on an incomplete recording");
    for (double v : prefix)
        sink.push(v);
    for (std::size_t i = prefix.size(); i < total; ++i)
        sink.push(period[(i - prefix.size()) % period.size()]);
    sink.finish();
}

CoreModel::CoreModel(const CoreParams &params) : params_(params)
{
    requireConfig(params.issue_width >= 1, "issue width must be >= 1");
    requireConfig(params.window_size >= params.issue_width,
                  "window must be at least the issue width");
    requireConfig(params.v_ref > 0.0, "reference voltage must be > 0");
}

CoreRunResult
CoreModel::runLoop(const isa::InstructionPool &pool,
                   const isa::Kernel &kernel, double f_clk_hz,
                   double duration_s) const
{
    TraceSink sink(1.0 / f_clk_hz);
    sink.reserve(loopEmitCount(f_clk_hz, duration_s));
    KernelRunStats stats =
        runLoopInto(pool, kernel, f_clk_hz, duration_s, sink);
    return {sink.take(), stats};
}

KernelRunStats
CoreModel::runLoopInto(const isa::InstructionPool &pool,
                       const isa::Kernel &kernel, double f_clk_hz,
                       double duration_s, SampleSink &sink,
                       LoopRecording *recording) const
{
    requireConfig(!kernel.empty(), "cannot run an empty kernel");
    requireConfig(f_clk_hz > 0.0 && duration_s > 0.0,
                  "clock and duration must be positive");
    kernel.validate(pool);
    const std::size_t target = loopEmitCount(f_clk_hz, duration_s);
    // Warmup long enough to fill pipelines and reach the periodic
    // steady state even for long-latency-heavy kernels.
    const std::size_t warmup =
        std::max<std::size_t>(1024, kernel.size() * 32);
    return simulateInto(pool, kernel.code(), true, f_clk_hz, target,
                        warmup, sink, recording);
}

CoreRunResult
CoreModel::runStream(const isa::InstructionPool &pool,
                     std::span<const isa::Instruction> stream,
                     double f_clk_hz) const
{
    requireConfig(!stream.empty(), "cannot run an empty stream");
    requireConfig(f_clk_hz > 0.0, "clock must be positive");
    // Upper bound: every instruction serialized at max latency.
    const std::size_t cap = stream.size() * 24 + 1024;
    TraceSink sink(1.0 / f_clk_hz);
    sink.reserve(cap);
    KernelRunStats stats =
        simulateInto(pool, stream, false, f_clk_hz, cap, 0, sink);
    return {sink.take(), stats};
}

KernelRunStats
CoreModel::simulateInto(const isa::InstructionPool &pool,
                        std::span<const isa::Instruction> body,
                        bool loop, double f_clk_hz,
                        std::size_t target_cycles,
                        std::size_t warmup_cycles,
                        SampleSink &sink,
                        LoopRecording *recording) const
{
    if (recording != nullptr) {
        recording->prefix.clear();
        recording->period.clear();
        recording->total = 0;
    }
    const double cycle_time = 1.0 / f_clk_hz;
    const std::size_t total_cycles = warmup_cycles + target_cycles;

    // Renaming table: last writer dynamic id per (regfile, reg).
    std::array<std::vector<std::int64_t>, 4> last_writer;
    for (std::size_t f = 0; f < 3; ++f) {
        const auto file = static_cast<isa::RegFile>(f);
        last_writer[f].assign(
            static_cast<std::size_t>(std::max(pool.regCount(file), 1)),
            -1);
    }
    last_writer[3].assign(1, -1);

    // Finish time (cycle at which the result is available) per
    // dynamic id; -1 while not yet issued. Stored as a sliding window
    // over recent dynamic ids: ids below ft_base can no longer be
    // referenced (not in the window, not a last_writer) and are
    // evicted periodically, keeping the engine O(window) in memory
    // regardless of run length.
    std::deque<std::int64_t> finish_time;
    std::int64_t ft_base = 0;
    auto ft = [&](std::int64_t dyn_id) -> std::int64_t & {
        return finish_time[static_cast<std::size_t>(dyn_id - ft_base)];
    };

    // Functional units: busy-until cycle per unit instance.
    std::array<std::vector<std::int64_t>, 6> fu_busy;
    for (std::size_t k = 0; k < 6; ++k)
        fu_busy[k].assign(params_.fuCount(static_cast<FuKind>(k)), 0);

    // Per-cycle switching energy, accumulated in a ring: an issue at
    // cycle c spreads energy over [c, c + latency), so once every
    // latency fits inside the ring, slot c % N holds exactly cycle
    // c's energy by the end of cycle c and can be emitted and
    // recycled immediately.
    constexpr std::size_t kEnergyRing = 64;
    std::array<double, kEnergyRing> energy{};

    std::deque<WindowEntry> window;
    std::size_t next_slot = 0;      ///< Next body index to dispatch.
    std::int64_t next_dyn = 0;      ///< Next dynamic id.
    bool stream_done = false;

    // Loop statistics: cycles at which slot 0 issues.
    std::vector<std::int64_t> iter_starts;
    std::size_t issued_total = 0;
    std::size_t issued_in_window = 0; // after warmup

    auto dispatch_one = [&]() {
        if (stream_done)
            return false;
        const isa::Instruction &instr = body[next_slot];
        const isa::InstrDef &d = pool.def(instr.def_index);
        WindowEntry e;
        e.slot = next_slot;
        e.dyn_id = next_dyn++;
        const std::size_t rf = regFileIndex(d.reg_file);
        e.producer0 = d.sources >= 1 && instr.src[0] >= 0
            ? last_writer[rf][static_cast<std::size_t>(instr.src[0])]
            : -1;
        e.producer1 = d.sources >= 2 && instr.src[1] >= 0
            ? last_writer[rf][static_cast<std::size_t>(instr.src[1])]
            : -1;
        if (d.has_dest && instr.dest >= 0)
            last_writer[rf][static_cast<std::size_t>(instr.dest)] =
                e.dyn_id;
        finish_time.push_back(-1);
        window.push_back(e);
        ++next_slot;
        if (next_slot == body.size()) {
            if (loop)
                next_slot = 0;
            else
                stream_done = true;
        }
        return true;
    };

    const double energy_to_amps = 1.0 / (cycle_time * params_.v_ref);

    // --- Steady-state fast-forward (loop mode only) ---------------
    // A looping kernel's normalized microarchitectural state (window
    // contents, relative finish times, unit busy deltas, energy-ring
    // phase, renaming table) lives in a finite space and evolves
    // deterministically, so it must eventually recur; from the first
    // recurrence on, the per-cycle current repeats exactly. Snapshot
    // the normalized state at iteration boundaries after warmup and,
    // once a snapshot repeats, replay the recorded period instead of
    // re-simulating — bit-identical emission at O(period) memory and
    // O(warmup + detection) simulated cycles.
    bool detecting = loop;
    // Recording rides on the same detection machinery: the prefix is
    // every live-simulated sample, the period is the detected
    // recurrence. Abandoning detection also abandons the recording
    // (an unbounded prefix would defeat the O(window) memory claim).
    bool rec_active = recording != nullptr && loop;
    bool have_ref = false;
    std::size_t ref_cycle = 0;
    std::vector<std::int64_t> ref_ints, cand_ints;
    std::vector<double> ref_ring, cand_ring;
    std::vector<double> rec_samples;
    std::vector<std::uint32_t> rec_issued, rec_iters;
    constexpr std::size_t kMaxRecord = 8192;

    auto snapshotInto = [&](std::int64_t c,
                            std::vector<std::int64_t> &ints,
                            std::vector<double> &ring) {
        ints.clear();
        ring.clear();
        auto encodeId = [&](std::int64_t p) {
            if (p < 0) {
                ints.push_back(0);
                ints.push_back(0);
                return;
            }
            const std::int64_t f = ft(p);
            if (f < 0) {
                // Unissued: identity relative to the dispatch head.
                ints.push_back(1);
                ints.push_back(p - next_dyn);
            } else if (f <= c) {
                ints.push_back(2); // done: any past finish is alike
                ints.push_back(0);
            } else {
                ints.push_back(3);
                ints.push_back(f - c);
            }
        };
        ints.push_back(static_cast<std::int64_t>(next_slot));
        ints.push_back(static_cast<std::int64_t>(window.size()));
        for (const auto &e : window) {
            ints.push_back(static_cast<std::int64_t>(e.slot));
            ints.push_back(e.dyn_id - next_dyn);
            encodeId(e.producer0);
            encodeId(e.producer1);
        }
        for (const auto &busy : fu_busy)
            for (std::int64_t b : busy)
                ints.push_back(std::max<std::int64_t>(b - c, 0));
        for (const auto &lw : last_writer)
            for (std::int64_t id : lw)
                encodeId(id);
        for (std::size_t j = 1; j <= kEnergyRing; ++j)
            ring.push_back(
                energy[(static_cast<std::size_t>(c) + j)
                       % kEnergyRing]);
    };

    std::size_t cycle = 0;
    for (; cycle < total_cycles; ++cycle) {
        // Dispatch into the window.
        while (window.size() < params_.window_size && dispatch_one()) {
        }
        if (window.empty() && stream_done)
            break;

        const auto c = static_cast<std::int64_t>(cycle);
        unsigned issued_this_cycle = 0;
        std::uint32_t iters_this_cycle = 0;

        for (auto it = window.begin();
             it != window.end()
             && issued_this_cycle < params_.issue_width;) {
            const isa::Instruction &instr = body[it->slot];
            const isa::InstrDef &d = pool.def(instr.def_index);

            // Operand readiness.
            const bool ready =
                (it->producer0 < 0
                 || (ft(it->producer0) >= 0
                     && ft(it->producer0) <= c))
                && (it->producer1 < 0
                    || (ft(it->producer1) >= 0
                        && ft(it->producer1) <= c));

            // Functional-unit availability.
            int unit = -1;
            const FuKind fu = fuKindForClass(d.cls);
            auto &busy = fu_busy[static_cast<std::size_t>(fu)];
            if (ready) {
                for (std::size_t u = 0; u < busy.size(); ++u) {
                    if (busy[u] <= c) {
                        unit = static_cast<int>(u);
                        break;
                    }
                }
            }

            if (ready && unit >= 0) {
                // Issue.
                const auto lat =
                    static_cast<std::int64_t>(d.latency);
                requireSim(
                    lat <= static_cast<std::int64_t>(kEnergyRing),
                    "instruction latency exceeds the energy ring; "
                    "enlarge kEnergyRing");
                ft(it->dyn_id) = c + lat;
                busy[static_cast<std::size_t>(unit)] =
                    isUnpipelined(d.cls) ? c + lat : c + 1;
                // Spread switching energy over the latency; front-end
                // overhead lands on the issue cycle.
                const double e_op = d.energy * params_.energy_scale;
                const double per_cycle =
                    e_op / static_cast<double>(d.latency);
                for (std::int64_t k = c; k < c + lat; ++k) {
                    energy[static_cast<std::size_t>(k)
                           % kEnergyRing] += per_cycle;
                }
                energy[cycle % kEnergyRing] += params_.issue_energy;

                ++issued_total;
                ++issued_this_cycle;
                if (cycle >= warmup_cycles)
                    ++issued_in_window;
                if (loop && it->slot == 0) {
                    iter_starts.push_back(c);
                    ++iters_this_cycle;
                }
                it = window.erase(it);
                continue;
            }
            if (!params_.out_of_order)
                break; // in-order: stall behind the oldest.
            ++it;
        }

        // End of cycle: every issue reaching this cycle has already
        // happened (later issues only touch later cycles), so its
        // energy is final — emit and recycle the ring slot.
        const std::size_t slot = cycle % kEnergyRing;
        const double emitted =
            params_.idle_current + energy[slot] * energy_to_amps;
        if (cycle >= warmup_cycles) {
            sink.push(emitted);
            if (rec_active)
                recording->prefix.push_back(emitted);
        }
        energy[slot] = 0.0;

        if (detecting && cycle >= warmup_cycles) {
            if (have_ref) {
                rec_samples.push_back(emitted);
                rec_issued.push_back(issued_this_cycle);
                rec_iters.push_back(iters_this_cycle);
            }
            if (iters_this_cycle > 0) {
                if (!have_ref) {
                    snapshotInto(c, ref_ints, ref_ring);
                    have_ref = true;
                    ref_cycle = cycle;
                } else {
                    snapshotInto(c, cand_ints, cand_ring);
                    if (cand_ints == ref_ints
                        && cand_ring == ref_ring) {
                        // Recurrence: cycles ref_cycle+1..cycle form
                        // one exact period. Replay it for the rest
                        // of the run.
                        if (rec_active)
                            recording->period = rec_samples;
                        const std::size_t period = rec_samples.size();
                        for (std::size_t cyc = cycle + 1;
                             cyc < total_cycles; ++cyc) {
                            const std::size_t idx =
                                (cyc - ref_cycle - 1) % period;
                            sink.push(rec_samples[idx]);
                            issued_in_window += rec_issued[idx];
                            for (std::uint32_t r = 0;
                                 r < rec_iters[idx]; ++r)
                                iter_starts.push_back(
                                    static_cast<std::int64_t>(cyc));
                        }
                        cycle = total_cycles;
                        break;
                    }
                }
            }
            if (rec_samples.size() > kMaxRecord) {
                // No recurrence within the budget: give up and keep
                // simulating cycle by cycle.
                detecting = false;
                std::vector<double>().swap(rec_samples);
                std::vector<std::uint32_t>().swap(rec_issued);
                std::vector<std::uint32_t>().swap(rec_iters);
                if (rec_active) {
                    rec_active = false;
                    std::vector<double>().swap(recording->prefix);
                }
            }
        }

        // Periodically evict finish times no dispatched or future
        // instruction can reference: producers come either from the
        // window entries or from the monotonically advancing
        // last_writer table.
        if ((cycle & 4095) == 4095) {
            std::int64_t min_live = next_dyn;
            for (const auto &lw : last_writer)
                for (std::int64_t id : lw)
                    if (id >= 0)
                        min_live = std::min(min_live, id);
            for (const auto &e : window) {
                min_live = std::min(min_live, e.dyn_id);
                if (e.producer0 >= 0)
                    min_live = std::min(min_live, e.producer0);
                if (e.producer1 >= 0)
                    min_live = std::min(min_live, e.producer1);
            }
            while (ft_base < min_live) {
                finish_time.pop_front();
                ++ft_base;
            }
        }
    }

    const std::size_t end_cycle = std::min(cycle, total_cycles);
    const std::size_t measured = end_cycle > warmup_cycles
        ? end_cycle - warmup_cycles
        : 0;
    requireSim(measured > 0, "core simulation produced no cycles");
    sink.finish();

    KernelRunStats stats;
    stats.cycles = measured;
    stats.instructions = issued_in_window;
    stats.ipc = static_cast<double>(issued_in_window)
        / static_cast<double>(measured);
    if (loop && iter_starts.size() >= 8) {
        // Steady-state loop period from the second half of the
        // iteration starts.
        const std::size_t half = iter_starts.size() / 2;
        const auto span_cycles =
            iter_starts.back() - iter_starts[half];
        const auto iters =
            static_cast<double>(iter_starts.size() - 1 - half);
        if (iters > 0 && span_cycles > 0) {
            stats.loop_period_s =
                static_cast<double>(span_cycles) / iters * cycle_time;
            stats.loop_freq_hz = 1.0 / stats.loop_period_s;
        }
    }
    if (recording != nullptr) {
        recording->total = measured;
        recording->stats = stats;
    }
    return stats;
}

CoreParams
cortexA72Params()
{
    CoreParams p;
    p.name = "Cortex-A72";
    p.out_of_order = true;
    p.issue_width = 3;
    p.window_size = 48;
    p.fu_int = 2;
    p.fu_int_mul = 1;
    p.fu_fp = 2;
    p.fu_simd = 2;
    p.fu_mem = 2;
    p.fu_branch = 1;
    p.idle_current = 0.10;
    p.issue_energy = 0.05e-9;
    p.energy_scale = 1.0; // 16 nm mobile big core (reference).
    p.v_ref = 1.0;
    return p;
}

CoreParams
cortexA53Params()
{
    CoreParams p;
    p.name = "Cortex-A53";
    p.out_of_order = false;
    p.issue_width = 2;
    p.window_size = 8; // shallow in-order front buffer
    p.fu_int = 2;
    p.fu_int_mul = 1;
    p.fu_fp = 1;
    p.fu_simd = 1;
    p.fu_mem = 1;
    p.fu_branch = 1;
    p.idle_current = 0.04;
    p.issue_energy = 0.03e-9;
    p.energy_scale = 1.1; // small in-order core: per-op switching
                          // energy comparable to the big core (same
                          // node); lower power comes from lower IPC
    p.v_ref = 1.0;
    return p;
}

CoreParams
athlonX4Params()
{
    CoreParams p;
    p.name = "Athlon II X4 645";
    p.out_of_order = true;
    p.issue_width = 3;
    p.window_size = 40;
    p.fu_int = 3;
    p.fu_int_mul = 1;
    p.fu_fp = 2;
    p.fu_simd = 2;
    p.fu_mem = 2;
    p.fu_branch = 1;
    p.idle_current = 0.9;    // 45 nm desktop: high static power
    p.issue_energy = 0.15e-9;
    p.energy_scale = 3.0;    // 45 nm node at 1.4 V: far higher energy
    p.v_ref = 1.4;
    return p;
}

} // namespace uarch
} // namespace emstress
