/**
 * @file
 * Cycle-level CPU core models. These replace the paper's physical
 * CPUs: they execute the GA's instruction kernels (or arbitrary
 * instruction streams) and emit a per-cycle current-demand trace,
 * which is the only CPU observable the EM methodology depends on.
 *
 * Two pipeline disciplines are provided through one engine:
 *  - in-order (scoreboard) issue, modeling the Cortex-A53;
 *  - out-of-order (renamed, windowed) issue, modeling the Cortex-A72
 *    and the AMD Athlon II.
 *
 * The current model: each executing instruction spreads its effective
 * switching energy uniformly over its latency; the front end adds a
 * per-issued-instruction overhead; an idle floor models leakage and
 * the clock tree. Current = energy-per-cycle / (cycle_time * V).
 */

#ifndef EMSTRESS_UARCH_CORE_MODEL_H
#define EMSTRESS_UARCH_CORE_MODEL_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "isa/kernel.h"
#include "isa/pool.h"
#include "util/sample_sink.h"
#include "util/trace.h"

namespace emstress {
namespace uarch {

/** Functional-unit categories the issue logic arbitrates over. */
enum class FuKind
{
    IntAlu,   ///< Short integer.
    IntMul,   ///< Long integer (mul/div); unpipelined.
    Fp,       ///< Floating point (short ops pipelined).
    Simd,     ///< SIMD datapath.
    Mem,      ///< Load/store port.
    BranchU,  ///< Branch unit.
};

/** Map an instruction class to the functional unit it occupies. */
FuKind fuKindForClass(isa::InstrClass cls);

/** Static configuration of a core model. */
struct CoreParams
{
    std::string name = "generic";
    bool out_of_order = true;
    unsigned issue_width = 2;   ///< Max instructions issued per cycle.
    unsigned window_size = 32;  ///< OoO scheduling window (ignored
                                ///< for in-order cores).
    unsigned fu_int = 2;        ///< Integer ALUs.
    unsigned fu_int_mul = 1;    ///< Integer multiply/divide units.
    unsigned fu_fp = 2;         ///< FP units.
    unsigned fu_simd = 1;       ///< SIMD units.
    unsigned fu_mem = 1;        ///< Load/store ports.
    unsigned fu_branch = 1;     ///< Branch units.

    double idle_current = 0.08;      ///< Leakage + clock tree [A].
    double issue_energy = 0.05e-9;   ///< Front-end energy per issue [J].
    double energy_scale = 1.0;       ///< Scales pool energies (node).
    double v_ref = 1.0;              ///< Voltage the energies assume.

    /** Number of units for a functional-unit kind. */
    unsigned fuCount(FuKind kind) const;
};

/** Statistics from running a kernel in a loop to steady state. */
struct KernelRunStats
{
    double ipc = 0.0;          ///< Steady-state instructions/cycle.
    double loop_period_s = 0.0;///< Steady-state loop iteration time.
    double loop_freq_hz = 0.0; ///< 1 / loop_period_s.
    std::size_t cycles = 0;    ///< Simulated cycles (after warmup).
    std::size_t instructions = 0; ///< Instructions issued (after warmup).
};

/** Output of a core-model run. */
struct CoreRunResult
{
    Trace current;        ///< Per-cycle current [A], dt = 1/f_clk.
    KernelRunStats stats; ///< Loop statistics (loop runs only).
};

/**
 * Bounded replayable recording of a loop run's emitted current,
 * filled by CoreModel::runLoopInto when the engine's steady-state
 * recurrence detection succeeds: the emitted stream then equals
 * `prefix` followed by `period` repeated until `total` samples are
 * out. Lets a caller that needs the same run twice (e.g. the
 * platform's mean-bias pass and observation pass) simulate once and
 * replay, at O(detection window) memory independent of duration.
 */
struct LoopRecording
{
    std::vector<double> prefix; ///< Samples up to the recurrence.
    std::vector<double> period; ///< One exact steady-state period
                                ///< (empty if detection failed).
    std::size_t total = 0;      ///< Samples the run emits in all.
    KernelRunStats stats;       ///< The run's statistics.

    /** True when the recording reproduces the full run. */
    bool
    complete() const
    {
        return !period.empty() || prefix.size() == total;
    }

    /** Replay the run into a sink (push x total, then finish). */
    void emitInto(SampleSink &sink) const;
};

/**
 * Executable core model. Stateless across runs; safe to reuse for
 * thousands of GA evaluations.
 */
class CoreModel
{
  public:
    /** Construct from parameters. */
    explicit CoreModel(const CoreParams &params);

    /** Parameters. */
    const CoreParams &params() const { return params_; }

    /**
     * Run a kernel as an infinite loop for a target duration and
     * return the steady-state current trace plus loop statistics.
     *
     * @param pool       Pool the kernel's instructions refer to.
     * @param kernel     Loop body to execute.
     * @param f_clk_hz   Core clock frequency.
     * @param duration_s Steady-state window to record (the engine
     *                   additionally runs a warmup that is discarded).
     */
    CoreRunResult runLoop(const isa::InstructionPool &pool,
                          const isa::Kernel &kernel, double f_clk_hz,
                          double duration_s) const;

    /**
     * Run a finite instruction stream once (no looping); used by the
     * synthetic benchmark workloads. The trace covers the full
     * execution.
     */
    CoreRunResult runStream(const isa::InstructionPool &pool,
                            std::span<const isa::Instruction> stream,
                            double f_clk_hz) const;

    /**
     * Streaming variant of runLoop: emits the per-cycle current into
     * a sample sink (one push per steady-state cycle, then finish())
     * instead of materializing a trace, and returns the loop
     * statistics. Sample values and stats are bit-identical to
     * runLoop; the engine itself holds O(window) state regardless of
     * duration.
     *
     * @param recording When non-null, additionally captures a bounded
     *                  prefix + period replay of the emitted stream
     *                  (check recording->complete(); detection can
     *                  fail for aperiodic-within-budget kernels).
     */
    KernelRunStats runLoopInto(const isa::InstructionPool &pool,
                               const isa::Kernel &kernel,
                               double f_clk_hz, double duration_s,
                               SampleSink &sink,
                               LoopRecording *recording = nullptr) const;

    /**
     * Cycles runLoopInto will emit for a duration: the simulated
     * steady-state window (loop execution never ends early).
     */
    static std::size_t loopEmitCount(double f_clk_hz,
                                     double duration_s)
    {
        return static_cast<std::size_t>(duration_s * f_clk_hz) + 1;
    }

  private:
    KernelRunStats simulateInto(const isa::InstructionPool &pool,
                                std::span<const isa::Instruction> body,
                                bool loop, double f_clk_hz,
                                std::size_t target_cycles,
                                std::size_t warmup_cycles,
                                SampleSink &sink,
                                LoopRecording *recording
                                = nullptr) const;

    CoreParams params_;
};

/** Cortex-A72-like out-of-order mobile big core. */
CoreParams cortexA72Params();

/** Cortex-A53-like dual-issue in-order little core. */
CoreParams cortexA53Params();

/** AMD Athlon II X4 645-like desktop out-of-order core. */
CoreParams athlonX4Params();

} // namespace uarch
} // namespace emstress

#endif // EMSTRESS_UARCH_CORE_MODEL_H
