/**
 * @file
 * Hardware tamper check via EM fingerprinting (paper Section 5.3's
 * "tampering detection" application): fingerprint a known-good
 * device, then verify suspect devices non-intrusively — no probes,
 * no disassembly, just the antenna.
 *
 * The demo checks three "devices": a genuine unit, a unit with part
 * of its decoupling removed (shaved package / desoldered caps), and
 * a unit with an implant loading the rail.
 */

#include <cstdio>

#include "core/tamper_detector.h"
#include "platform/platform.h"

int
main()
{
    using namespace emstress;
    using core::TamperDetector;

    // Golden reference device.
    platform::Platform golden(platform::junoA72Config(), 1000);
    std::printf("Fingerprinting the golden device (fast EM sweep)"
                "...\n");
    const auto baseline = TamperDetector::acquire(golden);
    std::printf("  baseline resonance: %.1f MHz, %zu sweep points\n\n",
                baseline.resonance_hz / 1e6, baseline.sweep.size());

    struct Suspect
    {
        const char *label;
        platform::PlatformConfig cfg;
    };
    std::vector<Suspect> suspects;
    suspects.push_back({"unit #1 (genuine)",
                        platform::junoA72Config()});
    {
        auto cfg = platform::junoA72Config();
        cfg.pdn.c_die_core *= 0.55;
        cfg.pdn.c_die_uncore *= 0.55;
        suspects.push_back({"unit #2 (decaps removed)", cfg});
    }
    {
        auto cfg = platform::junoA72Config();
        cfg.pdn.c_die_uncore *= 3.0;
        suspects.push_back({"unit #3 (implant on the rail)", cfg});
    }

    for (std::size_t i = 0; i < suspects.size(); ++i) {
        platform::Platform device(suspects[i].cfg,
                                  2000 + 17 * i); // fresh noise
        const auto fp = TamperDetector::acquire(device);
        const auto verdict = TamperDetector::check(baseline, fp);
        std::printf("%-30s resonance %.1f MHz  shift %+6.1f MHz  "
                    "profile-delta %.1f dB\n  -> %s: %s\n\n",
                    suspects[i].label, fp.resonance_hz / 1e6,
                    verdict.resonance_shift_hz / 1e6,
                    verdict.profile_distance_db,
                    verdict.tampered ? "TAMPERED" : "clean",
                    verdict.reason.c_str());
    }
    return 0;
}
