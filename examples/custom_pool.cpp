/**
 * @file
 * Custom instruction pools: the GA framework takes its instruction
 * set from a user-editable XML file (paper Section 3.2). This
 * example writes a reduced integer-only pool to disk, loads it back,
 * runs a short GA with it, and shows the effect of the restricted
 * mix on the achievable EM amplitude versus the full ARMv8 pool —
 * the paper's Section 8.3 point that a diverse instruction mix is
 * essential.
 */

#include <cstdio>
#include <fstream>

#include "core/virus_generator.h"
#include "isa/pool.h"
#include "platform/platform.h"

int
main()
{
    using namespace emstress;

    // A deliberately impoverished pool: integer ops only.
    const char *xml = R"(<pool isa="armv8">
  <registers int="8" fp="8" simd="8" mem_slots="4"/>
  <instruction mnemonic="MOV" class="int_short" latency="1"
               sources="1" dest="true" regfile="int" energy="1.8e-10"/>
  <instruction mnemonic="ADD" class="int_short" latency="1"
               sources="2" dest="true" regfile="int" energy="2.0e-10"/>
  <instruction mnemonic="MUL" class="int_long" latency="4"
               sources="2" dest="true" regfile="int" energy="3.0e-10"/>
  <instruction mnemonic="SDIV" class="int_long" latency="12"
               sources="2" dest="true" regfile="int" energy="4.0e-10"/>
</pool>
)";
    {
        std::ofstream f("int_only_pool.xml");
        f << xml;
    }
    const auto custom =
        isa::InstructionPool::fromXmlFile("int_only_pool.xml");
    std::printf("Loaded custom pool: %zu instructions (%s)\n",
                custom.defs().size(),
                isa::isaFamilyName(custom.isa()).c_str());

    // Run the same short GA with the full pool and the custom pool.
    auto run_search = [](platform::Platform &plat,
                         const isa::InstructionPool &pool,
                         const char *label) {
        core::EvalSettings eval;
        eval.duration_s = 3e-6;
        eval.sa_samples = 5;
        ga::GaConfig cfg;
        cfg.population = 20;
        cfg.generations = 10;
        cfg.seed = 21;
        core::EmAmplitudeFitness fitness(plat, eval);
        ga::GaEngine engine(pool, cfg);
        const auto result = engine.run(fitness);
        std::printf("%-22s best EM amplitude: %.1f dBm (dominant "
                    "%.1f MHz)\n",
                    label, result.best_fitness,
                    result.best_detail.dominant_freq_hz / 1e6);
        return result.best_fitness;
    };

    platform::Platform a72(platform::junoA72Config(), 77);
    const double full =
        run_search(a72, a72.pool(), "full ARMv8 pool:");
    const double restricted =
        run_search(a72, custom, "integer-only pool:");

    std::printf("\nDiversity penalty: %.1f dB weaker EM signal with "
                "the integer-only pool\n(the paper's viruses use "
                "nearly all instruction types, Section 8.3).\n",
                full - restricted);
    std::remove("int_only_pool.xml");
    return 0;
}
