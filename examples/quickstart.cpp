/**
 * @file
 * Quickstart: characterize a CPU's power-delivery network with the
 * EM methodology in ~40 lines.
 *
 *  1. Build a simulated platform (Juno Cortex-A72).
 *  2. Find its 1st-order resonance with the fast EM loop sweep.
 *  3. Run a short EM-driven GA search for a dI/dt virus.
 *  4. Validate: the virus's dominant EM frequency matches the sweep.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "core/resonance_explorer.h"
#include "core/virus_generator.h"
#include "platform/platform.h"

int
main()
{
    using namespace emstress;

    // 1. A simulated device under test: dual-core Cortex-A72 with
    //    its PDN, a loop antenna 7 cm away and a spectrum analyzer.
    platform::Platform juno(platform::junoA72Config(), /*seed=*/2024);
    std::printf("Platform: %s on %s (%zu cores, %.1f GHz, %.2f V)\n",
                juno.config().name.c_str(),
                juno.config().motherboard.c_str(),
                juno.config().n_cores, juno.frequency() / 1e9,
                juno.voltage());

    // 2. Fast resonance detection (paper Section 5.3): sweep the CPU
    //    clock so a fixed two-phase loop scans the EM spectrum.
    core::ResonanceExplorer explorer(juno);
    const auto sweep = explorer.sweep(/*duration=*/4e-6,
                                      /*sa_samples=*/5);
    const double f_res =
        core::ResonanceExplorer::estimateResonanceHz(sweep);
    std::printf("Fast EM sweep: 1st-order PDN resonance ~ %.1f MHz "
                "(%zu sweep points)\n",
                f_res / 1e6, sweep.size());

    // 3. EM-driven GA virus search (short budget for the example).
    core::VirusSearchConfig cfg;
    cfg.metric = core::VirusMetric::EmAmplitude;
    cfg.ga.population = 20;
    cfg.ga.generations = 10;
    cfg.ga.seed = 7;
    cfg.eval.sa_samples = 5;
    core::VirusGenerator generator(juno);
    const auto report = generator.search(
        cfg, [](const ga::GenerationRecord &rec) {
            std::printf("  gen %2zu: best %.1f dBm (dominant %.1f "
                        "MHz)\n",
                        rec.generation, rec.best_fitness,
                        rec.best_detail.dominant_freq_hz / 1e6);
        });

    // 4. Cross-validation.
    std::printf("\nGenerated dI/dt virus:\n");
    std::printf("  dominant EM frequency : %.1f MHz\n",
                report.dominant_freq_hz / 1e6);
    std::printf("  loop frequency        : %.1f MHz\n",
                report.loop_freq_hz / 1e6);
    std::printf("  IPC                   : %.2f\n", report.ipc);
    std::printf("  OC-DSO max droop      : %.1f mV\n",
                report.max_droop_v * 1e3);
    std::printf("  sweep vs GA agreement : %.1f vs %.1f MHz\n",
                f_res / 1e6, report.dominant_freq_hz / 1e6);
    std::printf("\nVirus assembly listing:\n%s",
                report.virus.toAssembly(juno.pool()).c_str());
    return 0;
}
