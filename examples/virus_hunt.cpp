/**
 * @file
 * virus_hunt — command-line dI/dt stress-test generator: the paper's
 * GA framework as a standalone tool.
 *
 * Usage:
 *   virus_hunt [options]
 *     --platform a72|a53|amd     target platform       (default a72)
 *     --metric em|droop|p2p      feedback metric       (default em)
 *     --generations N            GA generations        (default 30)
 *     --population N             individuals per gen   (default 32)
 *     --restarts N               independent restarts  (default 2)
 *     --seed S                   GA seed               (default 1)
 *     --samples N                SA samples/individual (default 8)
 *     --pool FILE.xml            custom instruction pool
 *     --out FILE                 save the virus kernel
 *
 * Prints per-generation progress, the final virus's characterization
 * and its assembly listing.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/virus_generator.h"
#include "ga/ga_engine.h"
#include "platform/platform.h"

namespace {

using namespace emstress;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--platform a72|a53|amd] [--metric "
                 "em|droop|p2p]\n"
                 "          [--generations N] [--population N] "
                 "[--restarts N]\n"
                 "          [--seed S] [--samples N] [--pool FILE] "
                 "[--out FILE]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string platform_name = "a72";
    std::string metric_name = "em";
    std::string pool_path;
    std::string out_path;
    core::VirusSearchConfig cfg;
    cfg.ga.population = 32;
    cfg.ga.generations = 30;
    cfg.ga.restarts = 2;
    cfg.ga.seed = 1;
    cfg.eval.sa_samples = 8;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--platform")
            platform_name = next();
        else if (arg == "--metric")
            metric_name = next();
        else if (arg == "--generations")
            cfg.ga.generations = std::stoul(next());
        else if (arg == "--population")
            cfg.ga.population = std::stoul(next());
        else if (arg == "--restarts")
            cfg.ga.restarts = std::stoul(next());
        else if (arg == "--seed")
            cfg.ga.seed = std::stoull(next());
        else if (arg == "--samples")
            cfg.eval.sa_samples = std::stoul(next());
        else if (arg == "--pool")
            pool_path = next();
        else if (arg == "--out")
            out_path = next();
        else
            usage(argv[0]);
    }

    platform::PlatformConfig pc;
    if (platform_name == "a72")
        pc = platform::junoA72Config();
    else if (platform_name == "a53")
        pc = platform::junoA53Config();
    else if (platform_name == "amd")
        pc = platform::athlonConfig();
    else
        usage(argv[0]);

    if (metric_name == "em")
        cfg.metric = core::VirusMetric::EmAmplitude;
    else if (metric_name == "droop")
        cfg.metric = core::VirusMetric::MaxDroop;
    else if (metric_name == "p2p")
        cfg.metric = core::VirusMetric::PeakToPeak;
    else
        usage(argv[0]);

    try {
        platform::Platform plat(pc, cfg.ga.seed ^ 0x9a75eedULL);
        std::printf("Target: %s on %s (%zu cores, %.2f GHz)\n",
                    pc.name.c_str(), pc.motherboard.c_str(),
                    pc.n_cores, pc.f_max_hz / 1e9);

        std::unique_ptr<isa::InstructionPool> custom_pool;
        if (!pool_path.empty()) {
            custom_pool = std::make_unique<isa::InstructionPool>(
                isa::InstructionPool::fromXmlFile(pool_path));
            std::printf("Using custom pool: %s (%zu instructions)\n",
                        pool_path.c_str(),
                        custom_pool->defs().size());
        }
        const isa::InstructionPool &pool =
            custom_pool ? *custom_pool : plat.pool();

        // Run the search (through the generator for built-in pools,
        // directly through the engine for custom ones).
        core::VirusReport report;
        auto progress = [](const ga::GenerationRecord &rec) {
            std::printf("gen %3zu  best %8.2f  mean %8.2f  dominant "
                        "%6.1f MHz\n",
                        rec.generation, rec.best_fitness,
                        rec.mean_fitness,
                        rec.best_detail.dominant_freq_hz / 1e6);
        };
        if (custom_pool) {
            core::EmAmplitudeFitness fitness(plat, cfg.eval);
            ga::GaEngine engine(pool, cfg.ga);
            auto ga_result = engine.run(fitness, progress);
            core::VirusGenerator gen(plat);
            report = gen.characterize(ga_result.best, cfg.eval);
            report.ga = std::move(ga_result);
        } else {
            core::VirusGenerator gen(plat);
            report = gen.search(cfg, progress);
        }

        std::printf("\n=== virus report ===\n");
        std::printf("metric              : %s\n",
                    report.metric.c_str());
        std::printf("best fitness        : %.2f\n",
                    report.ga.best_fitness);
        std::printf("dominant frequency  : %.2f MHz\n",
                    report.dominant_freq_hz / 1e6);
        std::printf("loop frequency      : %.2f MHz\n",
                    report.loop_freq_hz / 1e6);
        std::printf("IPC                 : %.2f\n", report.ipc);
        if (plat.hasVoltageVisibility()) {
            std::printf("max droop @ nominal : %.1f mV\n",
                        report.max_droop_v * 1e3);
            std::printf("peak-to-peak        : %.1f mV\n",
                        report.peak_to_peak_v * 1e3);
        }
        std::printf("modeled lab time    : %.1f h\n",
                    report.ga.estimated_lab_seconds / 3600.0);
        std::printf("\n%s",
                    report.virus.toAssembly(pool).c_str());

        if (!out_path.empty()) {
            std::ofstream f(out_path);
            f << report.virus.serialize(pool);
            std::printf("\nkernel saved to %s\n", out_path.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
