/**
 * @file
 * Margin audit: the workflow a silicon/platform team would run to
 * decide how much voltage guardband a part actually needs.
 *
 * For a chosen platform, this example:
 *  1. generates a dI/dt virus (worst-case workload) with EM feedback,
 *  2. measures V_MIN for the virus, a set of production-like
 *     workloads and idle,
 *  3. reports the guardband implied by the virus versus the energy
 *     wasted if the margin had been set by ordinary benchmarks.
 *
 * Usage: margin_audit [a72|a53|amd]   (default a72)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/virus_generator.h"
#include "core/vmin_tester.h"
#include "platform/platform.h"
#include "util/table.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace emstress;

    std::string which = argc > 1 ? argv[1] : "a72";
    platform::PlatformConfig cfg;
    if (which == "a53")
        cfg = platform::junoA53Config();
    else if (which == "amd")
        cfg = platform::athlonConfig();
    else
        cfg = platform::junoA72Config();

    platform::Platform plat(cfg, 99);
    std::printf("Margin audit for %s (nominal %.2f V @ %.2f GHz)\n",
                cfg.name.c_str(), cfg.v_nom, cfg.f_max_hz / 1e9);

    // 1. Worst-case workload from the EM-driven GA.
    core::VirusSearchConfig search;
    search.metric = core::VirusMetric::EmAmplitude;
    search.ga.population = 28;
    search.ga.generations = 24;
    search.ga.restarts = 2;
    search.ga.seed = 4;
    search.eval.sa_samples = 5;
    core::VirusGenerator generator(plat);
    std::printf("Searching for the dI/dt virus...\n");
    const auto virus = generator.search(search);
    std::printf("  virus dominant frequency: %.1f MHz\n\n",
                virus.dominant_freq_hz / 1e6);

    // 2. V_MIN for virus, benchmarks, idle.
    core::VminTester tester(plat, core::defaultVminConfig(plat));
    Table t({"workload", "vmin_v", "margin_mv", "droop_mv"});
    auto add = [&t](const core::VminRow &row) {
        t.row()
            .cell(row.workload)
            .cell(row.vmin_v, 3)
            .cell(row.margin_v * 1e3, 0)
            .cell(row.max_droop_v * 1e3, 1);
    };

    const auto virus_row = tester.testKernel("dI/dt virus",
                                             virus.virus, 30);
    add(virus_row);

    const auto suite = cfg.isa == isa::IsaFamily::ArmV8
        ? workloads::spec2006Suite()
        : workloads::desktopSuite();
    double worst_bench_vmin = 0.0;
    for (std::size_t i = 0; i < suite.size(); i += 3) {
        const auto row = tester.testWorkload(suite[i], 2);
        worst_bench_vmin = std::max(worst_bench_vmin, row.vmin_v);
        add(row);
    }
    add(tester.testWorkload(workloads::idleProfile(), 2));
    t.print("V_MIN audit");

    // 3. The decision numbers.
    const double guardband = cfg.v_nom - virus_row.vmin_v;
    const double optimistic = cfg.v_nom - worst_bench_vmin;
    std::printf("\nSafe margin established by the virus : %.0f mV "
                "below nominal\n",
                guardband * 1e3);
    std::printf("Margin benchmarks would have implied : %.0f mV "
                "below nominal\n",
                optimistic * 1e3);
    // Benchmarks with a lower V_MIN would have licensed operating
    // the part *below* the virus's failure point.
    std::printf("Unsafe overshoot if margined by benchmarks alone: "
                "%.0f mV\n",
                (virus_row.vmin_v - worst_bench_vmin) * 1e3);
    // Dynamic power ~ V^2: energy saved per 10 mV of margin removal.
    const double v_opt = virus_row.vmin_v + 0.01; // +1 step safety
    const double save = 1.0 - (v_opt * v_opt) / (cfg.v_nom * cfg.v_nom);
    std::printf("Running at V_MIN+10mV instead of nominal saves "
                "~%.1f%% dynamic power.\n",
                save * 100.0);
    return 0;
}
