/**
 * @file
 * SoC-wide voltage-emergency monitor: demonstrates the capability no
 * attached probe has (paper Section 6.1) — watching several voltage
 * domains of a heterogeneous SoC at once through one antenna.
 *
 * The example runs three scenarios on a big.LITTLE Juno model:
 *   1. both clusters idle,
 *   2. only the A72 cluster stressed,
 *   3. both clusters stressed simultaneously,
 * and shows how the combined EM spectrum separates the two domains'
 * signatures by their distinct PDN resonances.
 */

#include <cstdio>

#include "core/multidomain.h"
#include "core/resonant_kernel.h"
#include "platform/platform.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/workload.h"

namespace {

using namespace emstress;

/** Marker level around a frequency in a sweep. */
double
markerDbm(const instruments::SaSweep &sweep, double f_hz)
{
    return instruments::SpectrumAnalyzer::maxAmplitude(
               sweep, f_hz - mega(3.0), f_hz + mega(3.0))
        .power_dbm;
}

} // namespace

int
main()
{
    using namespace emstress;

    platform::Platform a72(platform::junoA72Config(), 31);
    platform::Platform a53(platform::junoA53Config(), 32);

    // Stress kernels tuned to each cluster's own resonance, built
    // deterministically (no GA needed for a monitor demo).
    const auto virus72 = core::makeResonantKernelFor(
        a72.pool(), a72.frequency(), mega(67.0));
    const auto virus53 = core::makeResonantKernelFor(
        a53.pool(), a53.frequency(), mega(76.5));

    struct Scenario
    {
        const char *name;
        bool stress72;
        bool stress53;
    };
    const Scenario scenarios[] = {
        {"both idle", false, false},
        {"A72 stressed, A53 idle", true, false},
        {"both stressed", true, true},
    };

    Table t({"scenario", "A72_sig_dbm(~67MHz)", "A53_sig_dbm(~76MHz)",
             "alert"});
    for (const auto &s : scenarios) {
        std::vector<core::DomainWorkload> domains;
        domains.push_back({&a72, virus72, 0, !s.stress72});
        domains.push_back({&a53, virus53, 0, !s.stress53});
        const auto result =
            core::monitorDomains(domains, 4e-6, a72.analyzer());

        const double sig72 = markerDbm(result.sweep, mega(67.0));
        const double sig53 = markerDbm(result.sweep, mega(76.5));
        // Alert threshold: 12 dB above the analyzer noise floor.
        const double alert_dbm =
            a72.analyzer().params().noise_floor_dbm + 12.0;
        std::string alert;
        if (sig72 > alert_dbm)
            alert += "A72-emergency ";
        if (sig53 > alert_dbm)
            alert += "A53-emergency";
        if (alert.empty())
            alert = "-";
        t.row()
            .cell(s.name)
            .cell(sig72, 1)
            .cell(sig53, 1)
            .cell(alert);
    }
    t.print("SoC voltage-emergency monitor (one antenna, two "
            "domains)");

    std::printf("\nEach domain's signature sits at its own PDN "
                "resonance, so one\nantenna distinguishes which "
                "cluster is in a voltage emergency.\n");
    return 0;
}
