// Seeded-violation fixture for `lint.seeded_r8`, TU 2 of 2:
// Right::poke() acquires Right::mutex_ then Left::mutex_ — the
// reverse of left.cc, closing the deadlock cycle. Never "fix" this
// file.

#include "peers.h"

namespace seeded {

void
Right::poke()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::lock_guard<std::mutex> peer_lock(peer->mutex_);
    ++pokes;
}

} // namespace seeded
