// Seeded-violation fixture for the `lint.seeded_r8` ctest: two
// classes whose methods acquire each other's mutexes in opposite
// orders across two translation units. emstress-lint MUST exit
// non-zero on this directory — that is the proof the R8 lock-order
// gate can fail. Never "fix" this file.
// lint: r5
#ifndef SEEDED_R8_PEERS_H
#define SEEDED_R8_PEERS_H

#include <mutex>

namespace seeded {

struct Right;

struct Left
{
    void poke();

    std::mutex mutex_;
    Right *peer = nullptr;
    int pokes = 0;
};

struct Right
{
    void poke();

    std::mutex mutex_;
    Left *peer = nullptr;
    int pokes = 0;
};

} // namespace seeded

#endif // SEEDED_R8_PEERS_H
