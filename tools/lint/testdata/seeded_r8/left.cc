// Seeded-violation fixture for `lint.seeded_r8`, TU 1 of 2:
// Left::poke() acquires Left::mutex_ then Right::mutex_. Combined
// with right.cc (the opposite order) this forms a 2-cycle in the
// acquired-while-holding graph. Never "fix" this file.

#include "peers.h"

namespace seeded {

void
Left::poke()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::lock_guard<std::mutex> peer_lock(peer->mutex_);
    ++pokes;
}

} // namespace seeded
