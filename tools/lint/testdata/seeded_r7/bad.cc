// Seeded-violation fixture for `lint.seeded_r7`: three distinct
// R7 shapes against Counter::value_ (`// guards: mutex_`):
//   1. bump() holds the WRONG mutex while writing,
//   2. readUnlocked() reads with no lock at all,
//   3. addLocked() writes relying on its caller, but bumpViaHelper()
//      calls it without holding mutex_ (cross-TU caller-holds).
// Never "fix" this file.

#include "guarded.h"

namespace seeded {

void
Counter::bump()
{
    const std::lock_guard<std::mutex> lock(other_mutex_);
    value_ += 1; // R7: holds other_mutex_, not mutex_.
}

void
Counter::bumpViaHelper()
{
    addLocked(2); // No lock here: addLocked's access is unguarded.
}

void
Counter::addLocked(long delta)
{
    value_ += delta; // R7: no caller is proven to hold mutex_.
}

long
Counter::readUnlocked() const
{
    return value_; // R7: read with no lock held.
}

} // namespace seeded
