// Seeded-violation fixture for the `lint.seeded_r7` ctest and the
// CI static-analysis self-test: a `// guards:` annotated member that
// bad.cc touches without holding the named mutex. emstress-lint MUST
// exit non-zero on this directory — that is the proof the R7 gate
// can fail. Never "fix" this file.
// lint: r5
#ifndef SEEDED_R7_GUARDED_H
#define SEEDED_R7_GUARDED_H

#include <mutex>

namespace seeded {

class Counter
{
public:
    void bump();
    void bumpViaHelper();
    long readUnlocked() const;

private:
    void addLocked(long delta);

    mutable std::mutex mutex_;
    mutable std::mutex other_mutex_;
    // guards: mutex_
    long value_ = 0;
};

} // namespace seeded

#endif // SEEDED_R7_GUARDED_H
