// Seeded-violation fixture: ad-hoc wall-clock timing OUTSIDE
// src/util/metrics.h (the sanctioned clock home) and without a
// `// lint: timing-stats` annotation must keep failing R1, so the
// metrics-header exemption cannot silently widen into a blanket
// clock allowance. Never "fix" this file.

#include <chrono>

double
adHocTiming()
{
    // R1: nondeterministic clock in ordinary code.
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}
