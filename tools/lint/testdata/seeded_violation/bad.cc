// Seeded-violation fixture for the `lint.seeded_violation` ctest
// and the CI static-analysis self-test: one violation per scanner
// rule. emstress-lint MUST exit non-zero on this directory — that is
// the proof the gate can fail. Never "fix" this file.

#include <cstdlib>
#include <unordered_map>

double
seededViolations()
{
    double acc = std::rand(); // R1: unseeded randomness

    std::unordered_map<int, double> merged;
    for (const auto &kv : merged) // R2: hash-order iteration
        acc += kv.second;

    // R3: float loop-carried accumulation as the sweep index.
    for (double f = 0.0; f < 1.0; f += 0.1)
        acc += f;

    const double f_clk_hz = 120e6; // R4: raw unit literal
    return acc + f_clk_hz;
}
