// R5 seeded violation: the include guard below is not the canonical
// EMSTRESS_BAD_GUARD_H for this path.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace emstress {
inline int
seededGuardViolation()
{
    return 5;
}
} // namespace emstress

#endif // WRONG_GUARD_H
