// Seeded-violation fixture: socket syscalls OUTSIDE the service
// transport layer (src/service/transport*) and without a
// `// lint: socket-transport` annotation must keep failing R6, so
// network I/O can never creep into worker evaluation paths. This
// file is not under src/service/, so every call below is a finding.
// Never "fix" this file.

#include <sys/socket.h>

int
adHocNetworkRead(int fd, char *buf, unsigned long n)
{
    // R6: socket syscalls in ordinary code.
    const int peer = accept(fd, nullptr, nullptr);
    if (peer < 0)
        return -1;
    return static_cast<int>(recv(peer, buf, n, 0));
}
