// Seeded-violation fixture for the `lint.seeded_r9` ctest: an
// encode/decode codec pair whose field sequences disagree — the
// decoder reads `seq` and `kind` in swapped order and never reads
// `stamp` at all. emstress-lint MUST exit non-zero on this
// directory — that is the proof the R9 wire-symmetry gate can fail.
// Never "fix" this file.

#include <cstdint>
#include <string>

namespace seeded {

struct WireWriter
{
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void str(const std::string &v);
};

struct WireReader
{
    std::uint32_t u32();
    std::uint64_t u64();
    std::string str();
};

struct Packet
{
    std::uint32_t kind = 0;
    std::uint64_t seq = 0;
    std::uint64_t stamp = 0;
    std::string payload;
};

void
encodePacket(WireWriter &w, const Packet &p)
{
    w.u32(p.kind);
    w.u64(p.seq);
    w.u64(p.stamp);
    w.str(p.payload);
}

void
decodePacket(WireReader &r, Packet &p)
{
    p.seq = r.u64(); // Reordered: the encoder writes kind first.
    p.kind = r.u32();
    p.payload = r.str(); // Dropped: stamp is never decoded.
}

} // namespace seeded

namespace seeded_resume {

struct WireWriter
{
    void u64(std::uint64_t v);
};

struct WireReader
{
    std::uint64_t u64();
};

struct ResumeRequest
{
    std::uint64_t token = 0;
    std::uint64_t last_acked_generation = 0;
};

// A second seeded asymmetry, mirroring the streaming-resume
// handshake: the decoder swaps the two u64 fields, so a resumed
// stream would replay from the token value. R9 must flag this pair
// too — never "fix" it.
void
encodeResumeRequest(WireWriter &w, const ResumeRequest &q)
{
    w.u64(q.token);
    w.u64(q.last_acked_generation);
}

ResumeRequest
decodeResumeRequest(WireReader &r)
{
    ResumeRequest q;
    q.last_acked_generation = r.u64();
    q.token = r.u64();
    return q;
}

} // namespace seeded_resume
