/**
 * @file
 * The cross-TU project index behind emstress-lint v2's R7/R8/R9
 * rule families (DESIGN.md §15). buildProjectIndex() walks every
 * analyzed file's token stream once for structure (namespaces,
 * classes with their members, mutex members, `// guards: <mutex>`
 * annotations, declared methods) and once for function bodies
 * (lexical lock_guard/unique_lock/scoped_lock tracking, guarded-
 * member accesses, call sites with the lock set held at the call).
 *
 * The index is deliberately a token-level approximation, not a type-
 * checked AST: mutexes are identified per *class*, not per object
 * (two instances of one class alias), lock tracking is lexical
 * (conditional unlocks are invisible), and accesses through objects
 * of unindexed types are unattributed. Those soundness limits are
 * documented in DESIGN.md §15; the dynamic TSan slice cross-checks
 * the same code paths.
 */

#ifndef EMSTRESS_TOOLS_LINT_INDEX_H
#define EMSTRESS_TOOLS_LINT_INDEX_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "scanner.h"

namespace emstress {
namespace lint {

/** One class/struct declaration aggregated across the project. */
struct ClassInfo
{
    std::string name; ///< Last component, e.g. "Job".
    /// Nesting chain, outermost first, e.g. {"SearchService","Job"}.
    std::vector<std::string> chain;
    /// Members declared with a mutex type (mutex, recursive_mutex,
    /// shared_mutex, timed_mutex).
    std::set<std::string> mutex_members;
    /// Declared or defined member-function names.
    std::set<std::string> methods;
    /// Member variable name -> head identifier of its declared type
    /// ("ArtifactStore" for `ArtifactStore store_;`). Used to
    /// attribute `obj_.method()` calls to the member's class.
    std::map<std::string, std::string> member_types;
};

/** One `// guards: <mutex>` annotated member. */
struct GuardedMember
{
    std::string member;             ///< Member name.
    std::string cls;                ///< Owning class (last component).
    std::vector<std::string> chain; ///< Owning class chain.
    /// Required mutex, resolved to "Class::name" when the owning
    /// class (or an enclosing one) declares it; verbatim otherwise.
    std::string mutex;
    std::size_t file = 0; ///< Declaring file index.
    int line = 0;         ///< Declaration line.
};

/** One lock acquisition inside a function body. */
struct LockAcquire
{
    std::string mutex; ///< Resolved mutex name.
    int line = 0;
    /// Resolved mutexes lexically held when this one is acquired.
    std::vector<std::string> held;
    /// False between `param_lock.unlock()` and `.lock()` on a
    /// unique_lock parameter: caller-held locks are dropped there.
    bool inferred_active = true;
};

/** One guarded-member access inside a function body. */
struct MemberAccess
{
    std::string member;
    /// Class of the base object when the access is `obj.member` /
    /// `obj->member` and obj's type is known (local declarations and
    /// class members are tracked); empty when unresolvable, in which
    /// case R7 falls back to matching by member name alone.
    std::string base_cls;
    int line = 0;
    std::vector<std::string> held;
    bool inferred_active = true;
};

/** One call site inside a function body. */
struct IndexCallSite
{
    std::string callee; ///< Resolved "Class::name" or bare name.
    int line = 0;
    std::vector<std::string> held;
    bool inferred_active = true;
};

/** One function definition with its recorded body events. */
struct FunctionInfo
{
    std::string name;      ///< Bare name.
    std::string cls;       ///< Defining class ("" for free functions).
    std::string qualified; ///< "Class::name" or bare name.
    std::vector<std::string> chain; ///< Class chain ("" -> empty).
    std::size_t file = 0;
    int line = 0;
    /// Token ranges in the file's scan: parameter list (between the
    /// parens) and body (between the braces, exclusive).
    std::size_t params_begin = 0, params_end = 0;
    std::size_t body_begin = 0, body_end = 0;
    std::vector<LockAcquire> acquires;
    std::vector<MemberAccess> accesses;
    std::vector<IndexCallSite> calls;
};

/** The project-wide index. */
struct ProjectIndex
{
    std::vector<ProjectFile> files;
    std::vector<SourceScan> scans; ///< One per file, same order.
    std::vector<ClassInfo> classes;
    /// Class last-name -> index into classes (first declaration
    /// wins; the repo has no same-name class collisions).
    std::map<std::string, std::size_t> class_by_name;
    std::vector<GuardedMember> guarded;
    /// Member name -> indices into guarded.
    std::map<std::string, std::vector<std::size_t>> guarded_by_member;
    std::vector<FunctionInfo> functions;
    /// Qualified name -> indices into functions (declaration order).
    std::map<std::string, std::vector<std::size_t>> functions_by_name;
};

/** Build the index over a file set. Never throws on malformed input;
 *  unrecognized constructs simply contribute no index entries. */
ProjectIndex buildProjectIndex(std::vector<ProjectFile> files);

/** R7 + R8 over a built index (unsuppressed, unsorted). */
std::vector<Finding> runLockRules(const ProjectIndex &index);

/** R9 over a built index (unsuppressed, unsorted). */
std::vector<Finding> runWireRules(const ProjectIndex &index);

} // namespace lint
} // namespace emstress

#endif // EMSTRESS_TOOLS_LINT_INDEX_H
