/**
 * @file
 * Internal token scanner for emstress-lint. Produces a flat token
 * stream with line numbers plus the `// lint: <tag>` suppression
 * annotations and the `// guards: <mutex>` lock-discipline
 * annotations found in comments. Comments, string literals
 * (including raw strings) and character literals never produce
 * tokens, so rule patterns cannot fire on quoted or commented text.
 */

#ifndef EMSTRESS_TOOLS_LINT_SCANNER_H
#define EMSTRESS_TOOLS_LINT_SCANNER_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace emstress {
namespace lint {

/** Lexical class of a token. */
enum class TokKind
{
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< pp-number: digits, '.', exponents, suffixes
    Punct,      ///< one punctuation character per token
};

/** One scanned token. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0; ///< 1-based line of the token's first character.
};

/** Scan result: tokens plus annotation tags keyed by line. */
struct SourceScan
{
    std::vector<Token> tokens;
    /** Tags of every `// lint: a, b` comment, keyed by the line the
     *  comment starts on. */
    std::map<int, std::vector<std::string>> annotations;
    /**
     * Mutex names of every `// guards: <mutex>` comment, keyed by
     * the line the comment starts on. The annotation declares that
     * the member on the same line (or the line directly below, for a
     * comment on its own line) must only be touched while the named
     * mutex is held; the R7 rule enforces it project-wide. Names may
     * be qualified (`Class::mutex_`).
     */
    std::map<int, std::vector<std::string>> guards;

    /**
     * True when a finding at `line` is covered by tag `tag` — i.e.
     * the tag is annotated on the same line or on the line directly
     * above (a comment on its own line).
     */
    bool hasTag(int line, std::string_view tag) const;
};

/** Tokenize one source file. Never throws on malformed input; the
 *  scanner degrades to per-character punctuation tokens. */
SourceScan scanSource(std::string_view text);

} // namespace lint
} // namespace emstress

#endif // EMSTRESS_TOOLS_LINT_SCANNER_H
