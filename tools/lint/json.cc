/**
 * @file
 * Machine-readable findings report (`emstress-lint-findings-v1`).
 * The writer is deterministic — identical findings always produce
 * byte-identical JSON, so CI can diff artifacts across runs. The
 * reader is a minimal recursive-descent parser sufficient for the
 * round-trip (it is not a general JSON library and rejects anything
 * the writer cannot emit, e.g. exotic escapes beyond \uXXXX).
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "lint.h"

namespace emstress {
namespace lint {

namespace {

void
appendEscaped(std::string &out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Cursor over the input with the few primitives the schema needs. */
class JsonReader
{
public:
    explicit JsonReader(std::string_view text) : s_(text) {}

    void expect(char c)
    {
        skipWs();
        if (i_ >= s_.size() || s_[i_] != c)
            fail(std::string("expected '") + c + "'");
        ++i_;
    }

    bool consume(char c)
    {
        skipWs();
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (i_ < s_.size() && s_[i_] != '"') {
            char c = s_[i_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (i_ >= s_.size())
                fail("dangling escape");
            const char e = s_[i_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'u': {
                if (i_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned v = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = s_[i_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (v > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(v);
                break;
            }
            default: fail("unsupported escape");
            }
        }
        expect('"');
        return out;
    }

    std::uint64_t integer()
    {
        skipWs();
        bool neg = false;
        if (i_ < s_.size() && s_[i_] == '-') {
            neg = true;
            ++i_;
        }
        if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9')
            fail("expected number");
        std::uint64_t v = 0;
        while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9')
            v = v * 10 + static_cast<std::uint64_t>(s_[i_++] - '0');
        if (neg)
            fail("negative value not in schema");
        return v;
    }

    bool boolean()
    {
        skipWs();
        if (s_.compare(i_, 4, "true") == 0) {
            i_ += 4;
            return true;
        }
        if (s_.compare(i_, 5, "false") == 0) {
            i_ += 5;
            return false;
        }
        fail("expected boolean");
        return false;
    }

    void skipWs()
    {
        while (i_ < s_.size()
               && (s_[i_] == ' ' || s_[i_] == '\n'
                   || s_[i_] == '\t' || s_[i_] == '\r'))
            ++i_;
    }

    void end()
    {
        skipWs();
        if (i_ != s_.size())
            fail("trailing garbage");
    }

    [[noreturn]] void fail(const std::string &why) const
    {
        throw std::runtime_error(
            "emstress-lint-findings-v1: malformed report at byte "
            + std::to_string(i_) + ": " + why);
    }

private:
    std::string_view s_;
    std::size_t i_ = 0;
};

} // namespace

std::string
findingsToJson(const std::vector<Finding> &findings,
               std::size_t files_scanned)
{
    std::string out;
    out += "{\n  \"schema\": \"emstress-lint-findings-v1\",\n";
    out += "  \"files_scanned\": " + std::to_string(files_scanned)
        + ",\n";
    out += "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\n      \"rule\": ";
        appendEscaped(out, f.rule);
        out += ",\n      \"file\": ";
        appendEscaped(out, f.file);
        out += ",\n      \"line\": " + std::to_string(f.line);
        out += ",\n      \"message\": ";
        appendEscaped(out, f.message);
        out += ",\n      \"witness\": [";
        for (std::size_t w = 0; w < f.witness.size(); ++w) {
            if (w)
                out += ", ";
            appendEscaped(out, f.witness[w]);
        }
        out += "],\n      \"suppressed\": ";
        out += f.suppressed ? "true" : "false";
        out += ",\n      \"suppression\": ";
        appendEscaped(out, f.suppression);
        out += "\n    }";
    }
    out += findings.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::vector<Finding>
findingsFromJson(std::string_view json, std::size_t *files_scanned)
{
    JsonReader r(json);
    std::vector<Finding> findings;
    r.expect('{');
    bool saw_schema = false;
    bool first_key = true;
    while (!r.consume('}')) {
        if (!first_key)
            r.expect(',');
        first_key = false;
        const std::string key = r.string();
        r.expect(':');
        if (key == "schema") {
            if (r.string() != "emstress-lint-findings-v1")
                throw std::runtime_error(
                    "emstress-lint-findings-v1: wrong schema tag");
            saw_schema = true;
        } else if (key == "files_scanned") {
            const std::uint64_t n = r.integer();
            if (files_scanned != nullptr)
                *files_scanned = static_cast<std::size_t>(n);
        } else if (key == "findings") {
            r.expect('[');
            if (!r.consume(']')) {
                do {
                    r.expect('{');
                    Finding f;
                    bool first = true;
                    while (!r.consume('}')) {
                        if (!first)
                            r.expect(',');
                        first = false;
                        const std::string k = r.string();
                        r.expect(':');
                        if (k == "rule")
                            f.rule = r.string();
                        else if (k == "file")
                            f.file = r.string();
                        else if (k == "line")
                            f.line = static_cast<int>(r.integer());
                        else if (k == "message")
                            f.message = r.string();
                        else if (k == "witness") {
                            r.expect('[');
                            if (!r.consume(']')) {
                                do {
                                    f.witness.push_back(r.string());
                                } while (r.consume(','));
                                r.expect(']');
                            }
                        } else if (k == "suppressed")
                            f.suppressed = r.boolean();
                        else if (k == "suppression")
                            f.suppression = r.string();
                        else
                            throw std::runtime_error(
                                "emstress-lint-findings-v1: unknown "
                                "key '"
                                + k + "'");
                    }
                    findings.push_back(std::move(f));
                } while (r.consume(','));
                r.expect(']');
            }
        } else {
            throw std::runtime_error(
                "emstress-lint-findings-v1: unknown key '" + key
                + "'");
        }
    }
    r.end();
    if (!saw_schema)
        throw std::runtime_error(
            "emstress-lint-findings-v1: missing schema tag");
    return findings;
}

} // namespace lint
} // namespace emstress
