/**
 * @file
 * Cross-TU rule families over the project index (DESIGN.md §15):
 *
 *   R7 lock-discipline  every access to a `// guards: <mutex>`
 *                       annotated member must happen while the named
 *                       mutex is held, either lexically or — for
 *                       *Locked-style helpers — inferred from every
 *                       caller holding it (a shrinking-intersection
 *                       fixpoint, interprocedural one level at a
 *                       time until stable).
 *
 *   R8 lock-order       the acquired-while-holding graph across all
 *                       TUs (lexical nesting plus calls made while
 *                       holding into functions that acquire) must be
 *                       acyclic; each cycle is reported once with a
 *                       witness naming every edge's site.
 *
 * analyzeProject() is the public entry: build the index, run R7-R9,
 * mark suppressions (annotation tags and fix-list), sort.
 */

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "index.h"

namespace emstress {
namespace lint {

namespace {

std::string
lastComponent(const std::string &name)
{
    const std::size_t pos = name.rfind("::");
    return pos == std::string::npos ? name : name.substr(pos + 2);
}

/** True when a held-mutex name satisfies a required one. Unqualified
 *  names (a guard the resolver could not bind to a class) match on
 *  the last component. */
bool
mutexMatches(const std::string &required, const std::string &held)
{
    if (required == held)
        return true;
    const bool req_bare = required.find("::") == std::string::npos;
    const bool held_bare = held.find("::") == std::string::npos;
    if (!req_bare && !held_bare)
        return false;
    return lastComponent(required) == lastComponent(held);
}

bool
setCovers(const std::string &required,
          const std::vector<std::string> &held)
{
    for (const std::string &h : held)
        if (mutexMatches(required, h))
            return true;
    return false;
}

std::string
joinSet(const std::set<std::string> &s)
{
    if (s.empty())
        return "{none}";
    std::string out = "{";
    bool first = true;
    for (const std::string &m : s) {
        if (!first)
            out += ", ";
        out += m;
        first = false;
    }
    return out + "}";
}

/** Resolve a recorded callee name to function indices: exact
 *  qualified match first, then a free-function fallback for
 *  namespace-qualified calls (`ns::f` recorded, `f` defined free). */
std::vector<std::size_t>
callTargets(const ProjectIndex &ix, const std::string &callee)
{
    const auto it = ix.functions_by_name.find(callee);
    if (it != ix.functions_by_name.end())
        return it->second;
    const std::size_t pos = callee.rfind("::");
    if (pos == std::string::npos)
        return {};
    const auto bare = ix.functions_by_name.find(callee.substr(pos + 2));
    if (bare == ix.functions_by_name.end())
        return {};
    std::vector<std::size_t> out;
    for (const std::size_t f : bare->second)
        if (ix.functions[f].cls.empty())
            out.push_back(f);
    return out;
}

/** Caller-holds sets: inferred[f] is the mutex set every call site
 *  of f is known to hold. std::nullopt means "universe" (no call
 *  site restricts it yet); sets only ever shrink. */
using HeldSet = std::optional<std::set<std::string>>;

struct InboundCall
{
    std::size_t caller = 0;
    std::vector<std::string> held;
    bool inferred_active = true;
};

std::vector<HeldSet>
solveInferredHolds(const ProjectIndex &ix,
                   std::vector<std::vector<InboundCall>> &inbound_out)
{
    std::vector<std::vector<InboundCall>> inbound(
        ix.functions.size());
    for (std::size_t f = 0; f < ix.functions.size(); ++f)
        for (const IndexCallSite &c : ix.functions[f].calls)
            for (const std::size_t tgt : callTargets(ix, c.callee))
                inbound[tgt].push_back(
                    {f, c.held, c.inferred_active});

    std::vector<HeldSet> inferred(ix.functions.size());
    for (std::size_t f = 0; f < ix.functions.size(); ++f)
        inferred[f] = inbound[f].empty()
            ? HeldSet(std::set<std::string>{})
            : HeldSet(std::nullopt);

    for (int iter = 0; iter < 32; ++iter) {
        bool changed = false;
        for (std::size_t f = 0; f < ix.functions.size(); ++f) {
            if (inbound[f].empty())
                continue;
            HeldSet acc = std::nullopt;
            for (const InboundCall &c : inbound[f]) {
                // Contribution of one call site: its lexical holds
                // plus (when the caller has not dropped a passed-in
                // lock) whatever the caller itself is known to hold.
                HeldSet contrib;
                if (c.inferred_active && !inferred[c.caller]) {
                    contrib = std::nullopt;
                } else {
                    std::set<std::string> s(c.held.begin(),
                                            c.held.end());
                    if (c.inferred_active && inferred[c.caller])
                        s.insert(inferred[c.caller]->begin(),
                                 inferred[c.caller]->end());
                    contrib = std::move(s);
                }
                if (!contrib)
                    continue; // Universe: no restriction.
                if (!acc) {
                    acc = contrib;
                    continue;
                }
                std::set<std::string> inter;
                std::set_intersection(
                    acc->begin(), acc->end(), contrib->begin(),
                    contrib->end(),
                    std::inserter(inter, inter.begin()));
                acc = std::move(inter);
            }
            if (acc != inferred[f]) {
                inferred[f] = std::move(acc);
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    inbound_out = std::move(inbound);
    return inferred;
}

std::set<std::string>
effectiveHolds(const std::vector<std::string> &lexical,
               bool inferred_active, const HeldSet &inferred)
{
    std::set<std::string> out(lexical.begin(), lexical.end());
    if (inferred_active && inferred)
        out.insert(inferred->begin(), inferred->end());
    return out;
}

bool
chainsRelated(const std::vector<std::string> &a,
              const std::vector<std::string> &b)
{
    return !a.empty() && !b.empty() && a.front() == b.front();
}

void
runR7(const ProjectIndex &ix, const std::vector<HeldSet> &inferred,
      const std::vector<std::vector<InboundCall>> &inbound,
      std::vector<Finding> &out)
{
    for (std::size_t f = 0; f < ix.functions.size(); ++f) {
        const FunctionInfo &fn = ix.functions[f];
        if (fn.chain.empty())
            continue; // Free-function accesses are out of scope.
        for (const MemberAccess &acc : fn.accesses) {
            const auto git = ix.guarded_by_member.find(acc.member);
            if (git == ix.guarded_by_member.end())
                continue;
            const GuardedMember *g = nullptr;
            for (const std::size_t gi : git->second) {
                const GuardedMember &cand = ix.guarded[gi];
                // A resolved base object is authoritative: the
                // access belongs to exactly that class (e.g.
                // `out.executed` on a BatchOutcome never matches
                // Batch::executed).
                if (!acc.base_cls.empty()) {
                    if (cand.cls == acc.base_cls) {
                        g = &cand;
                        break;
                    }
                    continue;
                }
                if (!chainsRelated(fn.chain, cand.chain))
                    continue;
                if (cand.cls == fn.cls) {
                    g = &cand;
                    break;
                }
                if (g == nullptr)
                    g = &cand;
            }
            if (g == nullptr)
                continue;
            const std::set<std::string> held = effectiveHolds(
                acc.held, acc.inferred_active, inferred[f]);
            // A universe inferred set (function never called from
            // indexed code but having call sites) cannot happen:
            // inferred is universe only transiently inside the
            // solver. A nullopt here means "no restriction known",
            // which only arises for unreachable recursion knots —
            // treat it as satisfied rather than guess.
            if (acc.inferred_active && !inferred[f])
                continue;
            if (setCovers(g->mutex, {held.begin(), held.end()}))
                continue;
            Finding fd;
            fd.file = ix.files[fn.file].path;
            fd.line = acc.line;
            fd.rule = "R7";
            fd.message = "member '" + g->cls + "::" + g->member
                + "' is guarded by '" + g->mutex
                + "' but this access does not hold it; lock the "
                  "mutex in '"
                + fn.qualified
                + "' (or in every caller), or annotate the access "
                  "'// lint: r7'";
            fd.witness.push_back(
                "guarded member declared at "
                + ix.files[g->file].path + ":"
                + std::to_string(g->line) + " (// guards: "
                + g->mutex + ")");
            fd.witness.push_back("locks held at the access: "
                                 + joinSet(held));
            if (acc.inferred_active && !inbound[f].empty()) {
                std::size_t listed = 0;
                for (const InboundCall &c : inbound[f]) {
                    if (setCovers(g->mutex, c.held))
                        continue;
                    const FunctionInfo &caller =
                        ix.functions[c.caller];
                    fd.witness.push_back(
                        "caller '" + caller.qualified + "' ("
                        + ix.files[caller.file].path + ":"
                        + std::to_string(caller.line)
                        + ") does not hold it at the call");
                    if (++listed == 3)
                        break;
                }
            }
            out.push_back(std::move(fd));
        }
    }
}

void
runR8(const ProjectIndex &ix, const std::vector<HeldSet> &inferred,
      std::vector<Finding> &out)
{
    struct Edge
    {
        std::string witness;
        std::string file;
        int line = 0;
    };
    std::map<std::pair<std::string, std::string>, Edge> edges;
    const auto addEdge = [&](const std::string &from,
                             const std::string &to, Edge e) {
        if (from == to)
            return; // Per-class mutex identity cannot distinguish
                    // two instances; self-edges would be noise.
        edges.emplace(std::make_pair(from, to), std::move(e));
    };

    for (std::size_t f = 0; f < ix.functions.size(); ++f) {
        const FunctionInfo &fn = ix.functions[f];
        const std::string where = ix.files[fn.file].path;
        for (const LockAcquire &acq : fn.acquires) {
            const std::set<std::string> held = effectiveHolds(
                acq.held, acq.inferred_active, inferred[f]);
            for (const std::string &h : held)
                addEdge(h, acq.mutex,
                        {"'" + h + "' held while '" + fn.qualified
                             + "' acquires '" + acq.mutex + "' at "
                             + where + ":"
                             + std::to_string(acq.line),
                         where, acq.line});
        }
        for (const IndexCallSite &call : fn.calls) {
            const std::set<std::string> held = effectiveHolds(
                call.held, call.inferred_active, inferred[f]);
            if (held.empty())
                continue;
            for (const std::size_t tgt :
                 callTargets(ix, call.callee)) {
                const FunctionInfo &callee = ix.functions[tgt];
                for (const LockAcquire &acq : callee.acquires) {
                    for (const std::string &h : held)
                        addEdge(
                            h, acq.mutex,
                            {"'" + h + "' held at call to '"
                                 + callee.qualified + "' ("
                                 + where + ":"
                                 + std::to_string(call.line)
                                 + "), which acquires '" + acq.mutex
                                 + "' at "
                                 + ix.files[callee.file].path + ":"
                                 + std::to_string(acq.line),
                             where, call.line});
                }
            }
        }
    }

    // Deterministic DFS cycle detection over the sorted edge map.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto &kv : edges)
        adj[kv.first.first].push_back(kv.first.second);

    std::set<std::vector<std::string>> seen_cycles;
    std::map<std::string, int> color; // 0 white, 1 grey, 2 black.
    std::vector<std::string> path;

    const std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            color[node] = 1;
            path.push_back(node);
            for (const std::string &next : adj[node]) {
                if (color[next] == 1) {
                    // Back edge: extract the cycle from the path.
                    std::vector<std::string> cycle;
                    bool in = false;
                    for (const std::string &p : path) {
                        if (p == next)
                            in = true;
                        if (in)
                            cycle.push_back(p);
                    }
                    if (cycle.empty())
                        continue;
                    // Canonical rotation for deduplication.
                    std::size_t best = 0;
                    for (std::size_t k = 1; k < cycle.size(); ++k)
                        if (cycle[k] < cycle[best])
                            best = k;
                    std::vector<std::string> canon;
                    for (std::size_t k = 0; k < cycle.size(); ++k)
                        canon.push_back(
                            cycle[(best + k) % cycle.size()]);
                    if (!seen_cycles.insert(canon).second)
                        continue;
                    Finding fd;
                    fd.rule = "R8";
                    std::string names;
                    for (const std::string &m : canon)
                        names += m + " -> ";
                    names += canon.front();
                    fd.message = "lock-order cycle: " + names
                        + "; break the cycle or suppress with "
                          "'// lint: r8' / a fix-list entry";
                    for (std::size_t k = 0; k < canon.size(); ++k) {
                        const auto eit = edges.find(
                            {canon[k],
                             canon[(k + 1) % canon.size()]});
                        if (eit != edges.end())
                            fd.witness.push_back(
                                eit->second.witness);
                    }
                    const auto first = edges.find(
                        {canon[0], canon[1 % canon.size()]});
                    if (first != edges.end()) {
                        fd.file = first->second.file;
                        fd.line = first->second.line;
                    }
                    out.push_back(std::move(fd));
                    continue;
                }
                if (color[next] == 0)
                    dfs(next);
            }
            path.pop_back();
            color[node] = 2;
        };
    for (const auto &kv : adj)
        if (color[kv.first] == 0)
            dfs(kv.first);
}

const char *
suppressionTagsFor(const std::string &rule, const char **alias)
{
    if (rule == "R7") {
        *alias = "lock-discipline";
        return "r7";
    }
    if (rule == "R8") {
        *alias = "lock-order";
        return "r8";
    }
    *alias = "wire-symmetry";
    return "r9";
}

} // namespace

std::vector<Finding>
analyzeProject(const std::vector<ProjectFile> &files,
               const Options &options)
{
    const ProjectIndex ix = buildProjectIndex(files);

    std::vector<Finding> findings;
    {
        std::vector<std::vector<InboundCall>> inbound;
        const std::vector<HeldSet> inferred =
            solveInferredHolds(ix, inbound);
        runR7(ix, inferred, inbound, findings);
        runR8(ix, inferred, findings);
    }
    {
        std::vector<Finding> wire = runWireRules(ix);
        findings.insert(findings.end(),
                        std::make_move_iterator(wire.begin()),
                        std::make_move_iterator(wire.end()));
    }

    // Suppression: annotation tags in the finding's own file, then
    // the fix-list.
    std::map<std::string, std::size_t> scan_of;
    for (std::size_t i = 0; i < ix.files.size(); ++i)
        scan_of[ix.files[i].path] = i;
    for (Finding &fd : findings) {
        const auto it = scan_of.find(fd.file);
        if (it != scan_of.end()) {
            const SourceScan &scan = ix.scans[it->second];
            const char *alias = nullptr;
            const char *tag = suppressionTagsFor(fd.rule, &alias);
            if (scan.hasTag(fd.line, tag)) {
                fd.suppressed = true;
                fd.suppression = std::string("annotation:") + tag;
            } else if (scan.hasTag(fd.line, alias)) {
                fd.suppressed = true;
                fd.suppression = std::string("annotation:") + alias;
            }
        }
        if (!fd.suppressed) {
            for (const FixListEntry &entry : options.fixlist) {
                if (!matchesFixList(entry, fd))
                    continue;
                fd.suppressed = true;
                fd.suppression = "fix-list:" + entry.rule + " "
                    + entry.path
                    + (entry.line > 0
                           ? " " + std::to_string(entry.line)
                           : "");
                break;
            }
        }
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return findings;
}

} // namespace lint
} // namespace emstress
