/**
 * @file
 * Token scanner implementation. A hand-rolled single-pass lexer that
 * understands exactly as much C++ as the rules need: comments (with
 * `lint:` annotation extraction), string/char literals incl. raw
 * strings, pp-numbers with digit separators, and identifiers.
 */

#include "scanner.h"

#include <cctype>

namespace emstress {
namespace lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

/**
 * Extract `lint:` tags from one comment's text and record them under
 * the comment's starting line. Grammar (README.md): the marker
 * `lint:` followed by one or more comma-separated tags matching
 * [a-z0-9-]+. Anything else in the comment is ignored.
 */
void
collectAnnotations(std::string_view comment, int line, SourceScan &out)
{
    const std::string_view marker = "lint:";
    std::size_t pos = comment.find(marker);
    while (pos != std::string_view::npos) {
        std::size_t i = pos + marker.size();
        for (;;) {
            while (i < comment.size()
                   && (comment[i] == ' ' || comment[i] == ','))
                ++i;
            std::size_t start = i;
            while (i < comment.size()
                   && (std::islower(static_cast<unsigned char>(
                           comment[i]))
                       || isDigit(comment[i]) || comment[i] == '-'))
                ++i;
            if (i == start)
                break;
            out.annotations[line].emplace_back(
                comment.substr(start, i - start));
            // Only a comma continues the tag list; a bare space ends
            // it so prose after the tag is not swallowed.
            std::size_t j = i;
            while (j < comment.size() && comment[j] == ' ')
                ++j;
            if (j >= comment.size() || comment[j] != ',')
                break;
            i = j;
        }
        pos = comment.find(marker, i);
    }
}

/**
 * Extract `guards:` mutex names from one comment's text. Grammar
 * (README.md): the marker `guards:` followed by one or more
 * comma-separated mutex names matching [A-Za-z_][A-Za-z0-9_:]*
 * (qualification with `::` allowed). Prose after the final name is
 * ignored, exactly as for `lint:` tags.
 */
void
collectGuards(std::string_view comment, int line, SourceScan &out)
{
    const std::string_view marker = "guards:";
    std::size_t pos = comment.find(marker);
    while (pos != std::string_view::npos) {
        std::size_t i = pos + marker.size();
        for (;;) {
            while (i < comment.size()
                   && (comment[i] == ' ' || comment[i] == ','))
                ++i;
            std::size_t start = i;
            while (i < comment.size()
                   && (std::isalnum(static_cast<unsigned char>(
                           comment[i]))
                       || comment[i] == '_' || comment[i] == ':'))
                ++i;
            if (i == start)
                break;
            out.guards[line].emplace_back(
                comment.substr(start, i - start));
            std::size_t j = i;
            while (j < comment.size() && comment[j] == ' ')
                ++j;
            if (j >= comment.size() || comment[j] != ',')
                break;
            i = j;
        }
        pos = comment.find(marker, i);
    }
}

} // namespace

bool
SourceScan::hasTag(int line, std::string_view tag) const
{
    for (int l = line - 1; l <= line; ++l) {
        const auto it = annotations.find(l);
        if (it == annotations.end())
            continue;
        for (const std::string &t : it->second)
            if (t == tag)
                return true;
    }
    return false;
}

SourceScan
scanSource(std::string_view text)
{
    SourceScan out;
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = text.size();

    const auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k, ++i)
            if (text[i] == '\n')
                ++line;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n' || c == ' ' || c == '\t' || c == '\r'
            || c == '\f' || c == '\v') {
            advance(1);
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const int start_line = line;
            std::size_t end = text.find('\n', i);
            if (end == std::string_view::npos)
                end = n;
            collectAnnotations(text.substr(i, end - i), start_line,
                               out);
            collectGuards(text.substr(i, end - i), start_line, out);
            advance(end - i);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int start_line = line;
            std::size_t end = text.find("*/", i + 2);
            if (end == std::string_view::npos)
                end = n;
            else
                end += 2;
            collectAnnotations(text.substr(i, end - i), start_line,
                               out);
            collectGuards(text.substr(i, end - i), start_line, out);
            advance(end - i);
            continue;
        }
        // Identifier — may introduce a raw string literal.
        if (isIdentStart(c)) {
            std::size_t end = i + 1;
            while (end < n && isIdentChar(text[end]))
                ++end;
            const std::string_view word = text.substr(i, end - i);
            const bool raw_prefix = word == "R" || word == "u8R"
                || word == "uR" || word == "LR";
            if (raw_prefix && end < n && text[end] == '"') {
                // R"delim( ... )delim"
                std::size_t dstart = end + 1;
                std::size_t dend = dstart;
                while (dend < n && text[dend] != '(')
                    ++dend;
                const std::string closer = ")"
                    + std::string(text.substr(dstart, dend - dstart))
                    + "\"";
                std::size_t close = text.find(closer, dend);
                if (close == std::string_view::npos)
                    close = n;
                else
                    close += closer.size();
                advance(close - i);
                continue;
            }
            out.tokens.push_back(
                {TokKind::Identifier, std::string(word), line});
            advance(end - i);
            continue;
        }
        // Number (pp-number, incl. 1'000'000 and 1.2e9 forms).
        if (isDigit(c)
            || (c == '.' && i + 1 < n && isDigit(text[i + 1]))) {
            std::size_t end = i + 1;
            while (end < n) {
                const char d = text[end];
                if (isIdentChar(d) || d == '.') {
                    // e/E/p/P may be followed by a sign.
                    if ((d == 'e' || d == 'E' || d == 'p' || d == 'P')
                        && end + 1 < n
                        && (text[end + 1] == '+'
                            || text[end + 1] == '-'))
                        ++end;
                    ++end;
                    continue;
                }
                if (d == '\'' && end + 1 < n
                    && isIdentChar(text[end + 1])) {
                    end += 2;
                    continue;
                }
                break;
            }
            out.tokens.push_back(
                {TokKind::Number,
                 std::string(text.substr(i, end - i)), line});
            advance(end - i);
            continue;
        }
        // String literal.
        if (c == '"') {
            std::size_t end = i + 1;
            while (end < n && text[end] != '"') {
                if (text[end] == '\\' && end + 1 < n)
                    ++end;
                ++end;
            }
            advance((end < n ? end + 1 : n) - i);
            continue;
        }
        // Character literal (a lone ' after an identifier or number
        // was already consumed above, so this really starts one).
        if (c == '\'') {
            std::size_t end = i + 1;
            while (end < n && text[end] != '\'') {
                if (text[end] == '\\' && end + 1 < n)
                    ++end;
                ++end;
            }
            advance((end < n ? end + 1 : n) - i);
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        advance(1);
    }
    return out;
}

} // namespace lint
} // namespace emstress
