/**
 * @file
 * R9 wire-symmetry (DESIGN.md §15): every `encodeX(WireWriter&, ...)`
 * must have a `decodeX(WireReader&, ...)` whose field sequence is the
 * mirror image — same wire methods (u8/u32/u64/f64/str) and helper
 * codecs in the same order over the same member fields — and every
 * field the job fingerprint hashes (jobDescription) must cross the
 * wire in encodeJobSpec. Field names are canonicalized against the
 * encoded object: local aliases (`const ga::GaConfig &g = spec.ga;`)
 * are expanded, parameter/local/range-for roots are stripped, and a
 * plain local on the decode side (`const std::uint64_t n = r.u64();`)
 * becomes a wildcard that matches any field of the same wire type —
 * that is how a length prefix pairs with `g.history.size()`.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.h"

namespace emstress {
namespace lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool
isWireMethod(const std::string &s)
{
    return s == "u8" || s == "u16" || s == "u32" || s == "u64"
        || s == "f64" || s == "str";
}

/** One encode/decode field event. op is a wire method name or
 *  "#Suffix" for a helper codec; field "" is a wildcard. */
struct Event
{
    std::string op;
    std::string field;
    int line = 0;
};

/** Per-function field-sequence extractor. */
class WireSeq
{
public:
    WireSeq(const ProjectIndex &ix, const FunctionInfo &fn,
            bool encode)
        : ix_(ix), t_(ix.scans[fn.file].tokens), fn_(fn),
          encode_(encode)
    {
        parseParams();
        walk();
    }

    const std::vector<Event> &events() const { return events_; }
    bool hasStream() const { return !stream_.empty(); }
    /** All canonical member paths seen anywhere in the body rooted
     *  at a parameter/local root (jobDescription's field set). */
    const std::set<std::string> &allPaths() const { return paths_; }

private:
    bool isP(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokKind::Punct
            && t_[i].text[0] == c;
    }
    bool isIdent(std::size_t i) const
    {
        return i < t_.size() && t_[i].kind == TokKind::Identifier;
    }

    void parseParams()
    {
        std::size_t start = fn_.params_begin;
        int depth = 0;
        const auto flush = [&](std::size_t b, std::size_t e) {
            bool stream = false;
            std::size_t name_i = kNpos;
            for (std::size_t j = b; j < e; ++j) {
                if (!isIdent(j))
                    continue;
                const std::string &s = t_[j].text;
                if (s == (encode_ ? "WireWriter" : "WireReader"))
                    stream = true;
                if (s != "const" && s != "std")
                    name_i = j;
            }
            if (name_i == kNpos)
                return;
            if (stream)
                stream_ = t_[name_i].text;
            else
                roots_.insert(t_[name_i].text);
        };
        for (std::size_t j = fn_.params_begin; j < fn_.params_end;
             ++j) {
            if (t_[j].kind != TokKind::Punct)
                continue;
            const char c = t_[j].text[0];
            if (c == '(' || c == '<' || c == '{')
                ++depth;
            else if (c == ')' || c == '>' || c == '}') {
                if (depth > 0)
                    --depth;
            } else if (c == ',' && depth == 0) {
                flush(start, j);
                start = j + 1;
            }
        }
        if (fn_.params_begin < fn_.params_end)
            flush(start, fn_.params_end);
    }

    /** Extract the member path ending at token `last` (walking the
     *  `.`/`->` chain backward). Empty when `last` is no path end. */
    std::vector<std::string> pathEndingAt(std::size_t last) const
    {
        if (!isIdent(last))
            return {};
        std::vector<std::string> parts = {t_[last].text};
        std::size_t i = last;
        for (;;) {
            if (i >= 2 && isP(i - 1, '.') && isIdent(i - 2)) {
                parts.insert(parts.begin(), t_[i - 2].text);
                i -= 2;
            } else if (i >= 3 && isP(i - 1, '>') && isP(i - 2, '-')
                       && isIdent(i - 3)) {
                parts.insert(parts.begin(), t_[i - 3].text);
                i -= 3;
            } else {
                break;
            }
        }
        // A qualified id (`Cls::member`) is not an object path.
        if (i >= 1 && isP(i - 1, ':'))
            return {};
        return parts;
    }

    /** First `.`/`->` member path inside [b, e), with a trailing
     *  call component (`.size()`, `.serialize(...)`) dropped. */
    std::vector<std::string> firstPathIn(std::size_t b,
                                        std::size_t e) const
    {
        for (std::size_t j = b; j + 1 < e; ++j) {
            if (!isIdent(j) || t_[j].text == stream_)
                continue;
            if (!isP(j + 1, '.')
                && !(isP(j + 1, '-') && isP(j + 2, '>')))
                continue;
            if (j >= 1 && isP(j - 1, ':'))
                continue; // Qualified, not an object path.
            // Walk the chain forward from j.
            std::vector<std::string> parts = {t_[j].text};
            std::size_t i = j + 1;
            while (i < e) {
                std::size_t next = kNpos;
                if (isP(i, '.') && isIdent(i + 1))
                    next = i + 1;
                else if (isP(i, '-') && isP(i + 1, '>')
                         && isIdent(i + 2))
                    next = i + 2;
                else
                    break;
                parts.push_back(t_[next].text);
                i = next + 1;
            }
            if (i < e && isP(i, '(') && parts.size() > 1)
                parts.pop_back(); // `.size()` / `.serialize(...)`.
            if (parts.empty())
                return {};
            return parts;
        }
        return {};
    }

    /** Expand aliases, strip the root; "" means wildcard. */
    std::string canonical(std::vector<std::string> parts) const
    {
        if (parts.empty())
            return "";
        const auto it = aliases_.find(parts.front());
        if (it != aliases_.end()) {
            std::vector<std::string> expanded = it->second;
            expanded.insert(expanded.end(), parts.begin() + 1,
                            parts.end());
            parts = std::move(expanded);
        }
        if (!parts.empty() && roots_.count(parts.front()))
            parts.erase(parts.begin());
        if (parts.empty())
            return "";
        std::string out = parts.front();
        for (std::size_t k = 1; k < parts.size(); ++k)
            out += "." + parts[k];
        return out;
    }

    /** The assignment target of [b, eq): a member path, or "" when
     *  the left side is a fresh local declaration (wildcard). */
    std::string lhsField(std::size_t b, std::size_t eq) const
    {
        if (eq <= b)
            return "";
        const std::vector<std::string> parts = pathEndingAt(eq - 1);
        if (parts.empty())
            return "";
        // Find where the path starts, then look left: any
        // identifier before it means a typed declaration
        // (`const std::uint64_t n = ...`) — a wildcard.
        std::size_t start = eq - 1;
        for (;;) {
            if (start >= 2 && isP(start - 1, '.')
                && isIdent(start - 2))
                start -= 2;
            else if (start >= 3 && isP(start - 1, '>')
                     && isP(start - 2, '-') && isIdent(start - 3))
                start -= 3;
            else
                break;
        }
        for (std::size_t j = b; j < start; ++j)
            if (isIdent(j))
                return "";
        return canonical(parts);
    }

    void handleStatement(std::size_t b, std::size_t e)
    {
        if (b >= e)
            return;
        // Range-for introduces a root: `for (T &rec : path)`.
        if (isIdent(b) && t_[b].text == "for") {
            for (std::size_t j = b + 1; j + 1 < e; ++j) {
                if (!isP(j, ':') || isP(j - 1, ':')
                    || isP(j + 1, ':'))
                    continue;
                if (isIdent(j - 1))
                    roots_.insert(t_[j - 1].text);
                break;
            }
            return;
        }
        if (isIdent(b)
            && (t_[b].text == "return" || t_[b].text == "throw"
                || t_[b].text == "break"
                || t_[b].text == "continue"))
            return;

        // Find the top-level `=` (paren depth 0).
        std::size_t eq = kNpos;
        bool has_paren = false, has_dot = false;
        std::size_t idents = 0;
        int par = 0;
        for (std::size_t j = b; j < e; ++j) {
            if (isIdent(j)) {
                ++idents;
                continue;
            }
            if (t_[j].kind != TokKind::Punct)
                continue;
            const char c = t_[j].text[0];
            if (c == '(') {
                ++par;
                has_paren = true;
            } else if (c == ')') {
                if (par > 0)
                    --par;
            } else if (c == '.') {
                has_dot = true;
            } else if (c == '=' && par == 0 && eq == kNpos
                       && !isP(j + 1, '=') && !isP(j - 1, '!')
                       && !isP(j - 1, '<') && !isP(j - 1, '>')) {
                eq = j;
            }
        }

        // Local declaration without initializer: a new root
        // (`JobSpec spec;`, `ga::GenerationRecord rec;`).
        if (eq == kNpos && !has_paren && !has_dot && idents >= 2) {
            std::size_t name_i = kNpos;
            for (std::size_t j = b; j < e; ++j)
                if (isIdent(j))
                    name_i = j;
            if (name_i != kNpos)
                roots_.insert(t_[name_i].text);
            return;
        }

        // Alias declaration: `T &g = spec.ga;` (pure-path RHS).
        if (eq != kNpos && eq > b && isIdent(eq - 1)) {
            std::vector<std::string> rhs;
            bool pure = e > eq + 1;
            std::size_t j = eq + 1;
            while (j < e && pure) {
                if (!isIdent(j)) {
                    pure = false;
                    break;
                }
                rhs.push_back(t_[j].text);
                ++j;
                if (j >= e)
                    break;
                if (isP(j, '.')) {
                    ++j;
                } else if (isP(j, '-') && isP(j + 1, '>')) {
                    j += 2;
                } else {
                    pure = false;
                }
            }
            if (pure && !rhs.empty()) {
                std::size_t type_idents = 0;
                for (std::size_t k = b; k + 1 < eq; ++k)
                    if (isIdent(k))
                        ++type_idents;
                if (type_idents >= 1) {
                    // Expand through existing aliases right away.
                    const auto ait = aliases_.find(rhs.front());
                    if (ait != aliases_.end()) {
                        std::vector<std::string> exp = ait->second;
                        exp.insert(exp.end(), rhs.begin() + 1,
                                   rhs.end());
                        rhs = std::move(exp);
                    }
                    aliases_[t_[eq - 1].text] = rhs;
                    return;
                }
            }
        }

        // Events, in token order within the statement.
        for (std::size_t j = b; j < e; ++j) {
            if (!isIdent(j))
                continue;
            const std::string &s = t_[j].text;
            // Stream method: `w.u64(...)` / `r.u64()`.
            if (s == stream_ && isP(j + 1, '.') && isIdent(j + 2)
                && isWireMethod(t_[j + 2].text) && isP(j + 3, '(')) {
                Event ev;
                ev.op = t_[j + 2].text;
                ev.line = t_[j].line;
                if (encode_) {
                    std::size_t close = j + 3;
                    int depth = 0;
                    for (; close < e; ++close) {
                        if (isP(close, '('))
                            ++depth;
                        else if (isP(close, ')') && --depth == 0)
                            break;
                    }
                    ev.field = canonical(
                        firstPathIn(j + 4, close));
                } else {
                    ev.field = eq != kNpos && j > eq
                        ? lhsField(b, eq)
                        : "";
                }
                events_.push_back(std::move(ev));
                j += 3;
                continue;
            }
            // Helper codec: `encodeX(w, field)` / `= decodeX(r)`.
            const std::string prefix =
                encode_ ? "encode" : "decode";
            if (s.size() > prefix.size()
                && s.compare(0, prefix.size(), prefix) == 0
                && isP(j + 1, '(') && s != fn_.name) {
                Event ev;
                ev.op = "#" + s.substr(prefix.size());
                ev.line = t_[j].line;
                if (encode_) {
                    std::size_t close = j + 1;
                    int depth = 0;
                    for (; close < e; ++close) {
                        if (isP(close, '('))
                            ++depth;
                        else if (isP(close, ')') && --depth == 0)
                            break;
                    }
                    ev.field = canonical(
                        firstPathIn(j + 2, close));
                } else {
                    ev.field = eq != kNpos && j > eq
                        ? lhsField(b, eq)
                        : "";
                }
                events_.push_back(std::move(ev));
            }
        }
    }

    void collectAllPaths(std::size_t b, std::size_t e)
    {
        for (std::size_t j = b; j < e; ++j) {
            if (!isIdent(j))
                continue;
            if (j >= 1 && (isP(j - 1, '.') || isP(j - 1, ':')
                           || (isP(j - 1, '>') && isP(j - 2, '-'))))
                continue; // Only path heads.
            if (!isP(j + 1, '.')
                && !(isP(j + 1, '-') && isP(j + 2, '>')))
                continue;
            const std::vector<std::string> parts =
                firstPathIn(j, e);
            if (parts.empty())
                continue;
            const std::string head = parts.front();
            const bool rooted = roots_.count(head)
                || aliases_.count(head);
            if (!rooted)
                continue;
            const std::string canon = canonical(parts);
            if (!canon.empty())
                paths_.insert(canon);
        }
    }

    void walk()
    {
        std::size_t stmt = fn_.body_begin;
        for (std::size_t i = fn_.body_begin;
             i < fn_.body_end && i < t_.size(); ++i) {
            if (t_[i].kind != TokKind::Punct)
                continue;
            const char c = t_[i].text[0];
            if (c == ';' || c == '{' || c == '}') {
                handleStatement(stmt, i);
                collectAllPaths(stmt, i);
                stmt = i + 1;
            }
        }
    }

    const ProjectIndex &ix_;
    const std::vector<Token> &t_;
    const FunctionInfo &fn_;
    const bool encode_;
    std::string stream_; ///< Writer/reader parameter name.
    std::set<std::string> roots_;
    std::map<std::string, std::vector<std::string>> aliases_;
    std::vector<Event> events_;
    std::set<std::string> paths_;
};

std::string
describeEvent(const Event &ev)
{
    const std::string op = ev.op[0] == '#'
        ? "codec '" + ev.op.substr(1) + "'"
        : "wire method '" + ev.op + "'";
    return op
        + (ev.field.empty() ? std::string(" (local)")
                            : " field '" + ev.field + "'");
}

} // namespace

std::vector<Finding>
runWireRules(const ProjectIndex &ix)
{
    std::vector<Finding> out;

    struct Side
    {
        std::size_t fn = kNpos;
        std::vector<Event> events;
    };
    std::map<std::string, Side> encs, decs;
    std::map<std::string, std::set<std::string>> enc_fields;

    for (std::size_t f = 0; f < ix.functions.size(); ++f) {
        const FunctionInfo &fn = ix.functions[f];
        const bool enc = fn.name.rfind("encode", 0) == 0
            && fn.name.size() > 6;
        const bool dec = fn.name.rfind("decode", 0) == 0
            && fn.name.size() > 6;
        if (!enc && !dec)
            continue;
        WireSeq seq(ix, fn, enc);
        if (!seq.hasStream())
            continue; // Not a wire codec signature.
        const std::string suffix = fn.name.substr(6);
        Side side;
        side.fn = f;
        side.events = seq.events();
        if (enc) {
            for (const Event &ev : side.events)
                if (!ev.field.empty())
                    enc_fields[suffix].insert(ev.field);
            encs[suffix] = std::move(side);
        } else {
            decs[suffix] = std::move(side);
        }
    }

    const auto at = [&](std::size_t f) -> const FunctionInfo & {
        return ix.functions[f];
    };

    // Unpaired codecs.
    for (const auto &kv : encs) {
        if (decs.count(kv.first))
            continue;
        const FunctionInfo &fn = at(kv.second.fn);
        Finding fd;
        fd.file = ix.files[fn.file].path;
        fd.line = fn.line;
        fd.rule = "R9";
        fd.message = "wire codec 'encode" + kv.first
            + "' has no 'decode" + kv.first
            + "' counterpart; every encoder needs a mirror decoder "
              "(or '// lint: r9')";
        out.push_back(std::move(fd));
    }
    for (const auto &kv : decs) {
        if (encs.count(kv.first))
            continue;
        const FunctionInfo &fn = at(kv.second.fn);
        Finding fd;
        fd.file = ix.files[fn.file].path;
        fd.line = fn.line;
        fd.rule = "R9";
        fd.message = "wire codec 'decode" + kv.first
            + "' has no 'encode" + kv.first
            + "' counterpart; every decoder needs a mirror encoder "
              "(or '// lint: r9')";
        out.push_back(std::move(fd));
    }

    // Paired codecs: positional field-sequence comparison.
    for (const auto &kv : encs) {
        const auto dit = decs.find(kv.first);
        if (dit == decs.end())
            continue;
        const std::vector<Event> &a = kv.second.events;
        const std::vector<Event> &b = dit->second.events;
        std::size_t k = 0;
        std::string diverge;
        for (; k < a.size() && k < b.size(); ++k) {
            if (a[k].op != b[k].op) {
                diverge = "position " + std::to_string(k + 1)
                    + ": encode emits " + describeEvent(a[k])
                    + " at line " + std::to_string(a[k].line)
                    + ", decode expects " + describeEvent(b[k])
                    + " at line " + std::to_string(b[k].line);
                break;
            }
            if (!a[k].field.empty() && !b[k].field.empty()
                && a[k].field != b[k].field) {
                diverge = "position " + std::to_string(k + 1)
                    + ": encode writes " + describeEvent(a[k])
                    + " at line " + std::to_string(a[k].line)
                    + ", decode fills " + describeEvent(b[k])
                    + " at line " + std::to_string(b[k].line);
                break;
            }
        }
        if (diverge.empty() && a.size() != b.size())
            diverge = "encode emits " + std::to_string(a.size())
                + " fields, decode reads " + std::to_string(b.size());
        if (diverge.empty())
            continue;
        const FunctionInfo &efn = at(kv.second.fn);
        const FunctionInfo &dfn = at(dit->second.fn);
        Finding fd;
        fd.file = ix.files[efn.file].path;
        fd.line = efn.line;
        fd.rule = "R9";
        fd.message = "wire codec 'encode" + kv.first
            + "' and 'decode" + kv.first
            + "' field sequences diverge (" + diverge
            + "); realign them or suppress with '// lint: r9'";
        fd.witness.push_back(diverge);
        // Field-set diff for the human: named on one side only.
        std::set<std::string> ea, db;
        for (const Event &ev : a)
            if (!ev.field.empty())
                ea.insert(ev.field);
        for (const Event &ev : b)
            if (!ev.field.empty())
                db.insert(ev.field);
        for (const std::string &fld : ea)
            if (!db.count(fld))
                fd.witness.push_back("encoded but never decoded: '"
                                     + fld + "'");
        for (const std::string &fld : db)
            if (!ea.count(fld))
                fd.witness.push_back("decoded but never encoded: '"
                                     + fld + "'");
        fd.witness.push_back("decode counterpart at "
                             + ix.files[dfn.file].path + ":"
                             + std::to_string(dfn.line));
        out.push_back(std::move(fd));
    }

    // Fingerprint coverage: every field jobDescription hashes must
    // cross the wire in the codec of its parameter's type — the
    // encodeJobSpec pairing in this tree (the preimage may
    // legitimately omit wire-only fields like tenant — the reverse
    // direction).
    const auto jd = ix.functions_by_name.find("jobDescription");
    if (jd != ix.functions_by_name.end()) {
        for (const std::size_t f : jd->second) {
            const FunctionInfo &fn = ix.functions[f];
            // Type of the first parameter: in its `const Type &name`
            // segment the second-to-last identifier is the type.
            std::string param_type = "JobSpec";
            {
                const std::vector<Token> &t =
                    ix.scans[fn.file].tokens;
                std::string prev, last;
                for (std::size_t j = fn.params_begin;
                     j < fn.params_end && j < t.size(); ++j) {
                    if (t[j].kind == TokKind::Punct
                        && t[j].text[0] == ',')
                        break;
                    if (t[j].kind != TokKind::Identifier)
                        continue;
                    const std::string &s = t[j].text;
                    if (s == "const" || s == "std")
                        continue;
                    prev = last;
                    last = s;
                }
                if (!prev.empty())
                    param_type = prev;
            }
            const auto ej = enc_fields.find(param_type);
            if (ej == enc_fields.end())
                continue;
            WireSeq seq(ix, fn, true); // No stream: paths only.
            std::vector<std::string> missing;
            for (const std::string &p : seq.allPaths())
                if (!ej->second.count(p))
                    missing.push_back(p);
            if (missing.empty())
                continue;
            Finding fd;
            fd.file = ix.files[fn.file].path;
            fd.line = fn.line;
            fd.rule = "R9";
            fd.message =
                "job fingerprint hashes fields that never cross the "
                "wire in encodeJobSpec; a decoded job would compute "
                "a different fingerprint (or '// lint: r9')";
            for (const std::string &p : missing)
                fd.witness.push_back(
                    "fingerprinted but not encoded: '" + p + "'");
            out.push_back(std::move(fd));
        }
    }
    return out;
}

} // namespace lint
} // namespace emstress
