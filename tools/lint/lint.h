/**
 * @file
 * Public interface of emstress-lint, the project-specific static
 * analysis pass that enforces the repository's bit-identity
 * invariants (DESIGN.md §10). The analyzer is a lightweight
 * tokenizer-based scanner — deliberately not a full C++ front end —
 * that recognizes the handful of source patterns which have caused
 * every determinism bug shipped so far:
 *
 *   R1  nondet-source   rand()/random_device/clocks/getenv outside
 *                       src/util/rng.h (clocks also sanctioned in
 *                       src/util/metrics.h and the service's
 *                       transport/scheduler files) and annotated
 *                       sites
 *   R2  unordered-iter  iteration over unordered_{map,set} whose
 *                       order can leak into merged results
 *   R3  float-sweep     floating-point loop-carried accumulation
 *                       used as a loop bound or sweep index
 *   R4  raw-units       raw frequency-magnitude literals where
 *                       util/units.h helpers are bit-exact
 *   R5  header-guard    canonical EMSTRESS_<PATH>_H include guards
 *                       (the compile half of header self-sufficiency
 *                       is a generated CMake check)
 *   R6  socket-confine  socket syscalls outside the service
 *                       transport layer (src/service/transport*);
 *                       network I/O must never reach worker
 *                       evaluation paths
 *
 * Findings are suppressed either by an inline annotation comment
 * (`// lint: <tag>` on the same line or the line directly above) or
 * by an entry in a fix-list file. See tools/lint/README.md for the
 * annotation grammar.
 */

#ifndef EMSTRESS_TOOLS_LINT_LINT_H
#define EMSTRESS_TOOLS_LINT_LINT_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace emstress {
namespace lint {

/** One diagnostic produced by a rule. */
struct Finding
{
    std::string file;    ///< Path as handed to the analyzer.
    int line = 0;        ///< 1-based source line.
    std::string rule;    ///< Rule id, e.g. "R1".
    std::string message; ///< Human-readable explanation + fix hint.
};

/**
 * One suppression from a fix-list file. Format (one per line,
 * `#` comments allowed):
 *
 *     <rule> <path-suffix> [<line>]
 *
 * The entry suppresses findings of `rule` in any analyzed file whose
 * path ends with `path` (compared component-wise, so `rng.h` does not
 * match `xrng.h`); a line number of 0 matches every line.
 */
struct FixListEntry
{
    std::string rule;
    std::string path;
    int line = 0;
};

/** Analyzer configuration. */
struct Options
{
    std::vector<FixListEntry> fixlist;
    /**
     * Text of the companion header (`foo.h` next to `foo.cc`), when
     * one exists. R2 scans it for member declarations so that
     * iterating an unordered member from the .cc is caught even
     * though the declaration lives in the header. The companion is
     * only mined for declarations — its own findings are reported
     * when the header itself is analyzed.
     */
    std::string companion;
};

/**
 * Run every rule over one in-memory source file. `path` determines
 * path-based exemptions (src/util/rng.h for all of R1,
 * src/util/metrics.h and src/service/{transport*,scheduler*} for
 * R1's clock identifiers, src/util/units.h for R4,
 * src/service/transport* for R6) and the canonical guard name for
 * R5; it does not need to exist on disk. Returns the unsuppressed
 * findings in line order.
 */
std::vector<Finding> analyzeSource(std::string_view path,
                                   std::string_view text,
                                   const Options &options = {});

/**
 * Parse a fix-list file's contents. Malformed lines are reported to
 * `err` (when non-null) and skipped rather than aborting the run: a
 * stale suppression must never mask the lint pass itself failing.
 */
std::vector<FixListEntry> parseFixList(std::string_view text,
                                       std::ostream *err = nullptr);

/** True when `entry` suppresses `finding` (see FixListEntry). */
bool matchesFixList(const FixListEntry &entry, const Finding &finding);

/** Stable one-line rendering: `file:line: [Rn] message`. */
std::string formatFinding(const Finding &finding);

} // namespace lint
} // namespace emstress

#endif // EMSTRESS_TOOLS_LINT_LINT_H
