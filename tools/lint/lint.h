/**
 * @file
 * Public interface of emstress-lint, the project-specific static
 * analysis pass that enforces the repository's bit-identity
 * invariants (DESIGN.md §10). The analyzer is a lightweight
 * tokenizer-based scanner — deliberately not a full C++ front end —
 * that recognizes the handful of source patterns which have caused
 * every determinism bug shipped so far:
 *
 *   R1  nondet-source   rand()/random_device/clocks/getenv outside
 *                       src/util/rng.h (clocks also sanctioned in
 *                       src/util/metrics.h and the service's
 *                       transport/scheduler files) and annotated
 *                       sites
 *   R2  unordered-iter  iteration over unordered_{map,set} whose
 *                       order can leak into merged results
 *   R3  float-sweep     floating-point loop-carried accumulation
 *                       used as a loop bound or sweep index
 *   R4  raw-units       raw frequency-magnitude literals where
 *                       util/units.h helpers are bit-exact
 *   R5  header-guard    canonical EMSTRESS_<PATH>_H include guards
 *                       (the compile half of header self-sufficiency
 *                       is a generated CMake check)
 *   R6  socket-confine  socket syscalls outside the service
 *                       transport layer (src/service/transport*);
 *                       network I/O must never reach worker
 *                       evaluation paths
 *
 * On top of the per-file rules, emstress-lint v2 builds a
 * project-wide index over every analyzed translation unit (classes,
 * members, `// guards: <mutex>` annotations, functions with lexical
 * lock tracking and call sites) and runs three cross-TU rule
 * families over it (DESIGN.md §15):
 *
 *   R7  lock-discipline  a member annotated `// guards: <mutex>`
 *                        read or written in a scope that does not
 *                        hold the named mutex (lexical lock_guard/
 *                        unique_lock/scoped_lock tracking plus a
 *                        caller-holds fixpoint for *Locked-style
 *                        helpers)
 *   R8  lock-order       a cycle in the project-wide
 *                        acquired-while-holding mutex graph; the
 *                        witness path names every edge's call and
 *                        acquisition site
 *   R9  wire-symmetry    encode/decode wire-codec field sequences
 *                        that disagree (missing field, ordering
 *                        drift, type mismatch), or a fingerprinted
 *                        jobDescription field that never crosses
 *                        the wire
 *
 * Findings are suppressed either by an inline annotation comment
 * (`// lint: <tag>` on the same line or the line directly above) or
 * by an entry in a fix-list file. See tools/lint/README.md for the
 * annotation grammar.
 */

#ifndef EMSTRESS_TOOLS_LINT_LINT_H
#define EMSTRESS_TOOLS_LINT_LINT_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace emstress {
namespace lint {

/** One diagnostic produced by a rule. */
struct Finding
{
    std::string file;    ///< Path as handed to the analyzer.
    int line = 0;        ///< 1-based source line.
    std::string rule;    ///< Rule id, e.g. "R1".
    std::string message; ///< Human-readable explanation + fix hint.
    /**
     * Supporting evidence, one step per entry: the lock path that
     * fails to cover an access (R7), the cycle's
     * held-at/acquired-at chain (R8), or the encode/decode field
     * diff (R9). Empty for the token-local rules.
     */
    std::vector<std::string> witness;
    /// True when an annotation or fix-list entry silences the
    /// finding. Suppressed findings never fail a run but are kept in
    /// the machine-readable report so CI can audit suppressions.
    bool suppressed = false;
    /// Why it is suppressed: "annotation:<tag>" or
    /// "fix-list:<rule> <path> [<line>]". Empty when unsuppressed.
    std::string suppression;
};

/**
 * One suppression from a fix-list file. Format (one per line,
 * `#` comments allowed):
 *
 *     <rule> <path-suffix> [<line>]
 *
 * The entry suppresses findings of `rule` in any analyzed file whose
 * path ends with `path` (compared component-wise, so `rng.h` does not
 * match `xrng.h`); a line number of 0 matches every line.
 */
struct FixListEntry
{
    std::string rule;
    std::string path;
    int line = 0;
};

/** Analyzer configuration. */
struct Options
{
    std::vector<FixListEntry> fixlist;
    /**
     * Text of the companion header (`foo.h` next to `foo.cc`), when
     * one exists. R2 scans it for member declarations so that
     * iterating an unordered member from the .cc is caught even
     * though the declaration lives in the header. The companion is
     * only mined for declarations — its own findings are reported
     * when the header itself is analyzed.
     */
    std::string companion;
};

/**
 * Run every rule over one in-memory source file. `path` determines
 * path-based exemptions (src/util/rng.h for all of R1,
 * src/util/metrics.h and src/service/{transport*,scheduler*} for
 * R1's clock identifiers, src/util/units.h for R4,
 * src/service/transport* for R6) and the canonical guard name for
 * R5; it does not need to exist on disk. Returns the unsuppressed
 * findings in line order.
 */
std::vector<Finding> analyzeSource(std::string_view path,
                                   std::string_view text,
                                   const Options &options = {});

/**
 * As analyzeSource, but keeps suppressed findings in the result with
 * Finding::suppressed/suppression set — the JSON report's view.
 */
std::vector<Finding> analyzeSourceAll(std::string_view path,
                                      std::string_view text,
                                      const Options &options = {});

/** One file of a project analysis (in-memory; path need not exist). */
struct ProjectFile
{
    std::string path;
    std::string text;
};

/**
 * Run the cross-TU rules (R7 lock-discipline, R8 lock-order, R9
 * wire-symmetry) over a whole project's files at once. Returns every
 * finding, suppressed ones marked (annotation tags `r7`/`r8`/`r9`
 * or their semantic aliases `lock-discipline`/`lock-order`/
 * `wire-symmetry`, plus fix-list entries), sorted by (file, line,
 * rule) for deterministic output.
 */
std::vector<Finding> analyzeProject(const std::vector<ProjectFile> &files,
                                    const Options &options = {});

/**
 * Serialize findings as the `emstress-lint-findings-v1` JSON report
 * consumed by CI: schema tag, scanned-file count, and one record per
 * finding carrying rule, file, line, message, witness list and
 * suppression state. Deterministic: the same findings always produce
 * byte-identical JSON.
 */
std::string findingsToJson(const std::vector<Finding> &findings,
                           std::size_t files_scanned);

/**
 * Parse a findingsToJson report back (round-trip tested). @throws
 * std::runtime_error on malformed input or a wrong schema tag.
 * @param files_scanned Optional out-param for the header count.
 */
std::vector<Finding> findingsFromJson(std::string_view json,
                                      std::size_t *files_scanned
                                      = nullptr);

/**
 * Parse a fix-list file's contents. Malformed lines are reported to
 * `err` (when non-null) and skipped rather than aborting the run: a
 * stale suppression must never mask the lint pass itself failing.
 */
std::vector<FixListEntry> parseFixList(std::string_view text,
                                       std::ostream *err = nullptr);

/** True when `entry` suppresses `finding` (see FixListEntry). */
bool matchesFixList(const FixListEntry &entry, const Finding &finding);

/** Stable one-line rendering: `file:line: [Rn] message`. */
std::string formatFinding(const Finding &finding);

} // namespace lint
} // namespace emstress

#endif // EMSTRESS_TOOLS_LINT_LINT_H
