/**
 * @file
 * Fix-list parsing and matching. A fix-list is the coarse-grained
 * suppression channel — inline `// lint: <tag>` annotations are
 * preferred because they sit next to the code they justify, but a
 * fix-list entry is the right tool for findings in files that a PR
 * cannot touch yet (staged migrations) or for whole-file waivers.
 */

#include "lint.h"

#include <cctype>
#include <ostream>
#include <sstream>

namespace emstress {
namespace lint {

namespace {

bool
pathSuffixMatches(std::string_view path, std::string_view suffix)
{
    if (path.size() < suffix.size())
        return false;
    if (path.substr(path.size() - suffix.size()) != suffix)
        return false;
    if (path.size() == suffix.size())
        return true;
    const char before = path[path.size() - suffix.size() - 1];
    return before == '/' || before == '\\';
}

} // namespace

std::vector<FixListEntry>
parseFixList(std::string_view text, std::ostream *err)
{
    std::vector<FixListEntry> entries;
    std::istringstream in{std::string(text)};
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        std::istringstream fields(raw);
        FixListEntry entry;
        if (!(fields >> entry.rule))
            continue; // blank / comment-only line
        if (!(fields >> entry.path)) {
            if (err)
                *err << "fix-list line " << lineno
                     << ": expected `<rule> <path> [<line>]`, got `"
                     << raw << "`\n";
            continue;
        }
        if (!(fields >> entry.line))
            entry.line = 0; // any line
        for (char &c : entry.rule)
            c = static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        entries.push_back(std::move(entry));
    }
    return entries;
}

bool
matchesFixList(const FixListEntry &entry, const Finding &finding)
{
    if (entry.rule != finding.rule && entry.rule != "*")
        return false;
    if (entry.line != 0 && entry.line != finding.line)
        return false;
    return pathSuffixMatches(finding.file, entry.path);
}

} // namespace lint
} // namespace emstress
