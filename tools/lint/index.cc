/**
 * @file
 * Cross-TU project index construction (DESIGN.md §15). Two passes
 * over every file's token stream:
 *
 *   pass 1 (structure)  namespaces, classes with nesting chains,
 *                       member variables (name + type head), mutex
 *                       members, declared methods, and `// guards:`
 *                       annotations bound to the member they sit on.
 *
 *   pass 2 (bodies)     function definitions with lexical lock
 *                       tracking (lock_guard/unique_lock/scoped_lock
 *                       declarations, unlock()/lock() on unique_lock
 *                       locals and parameters), guarded-member access
 *                       sites with local-shadow suppression, and call
 *                       sites resolved through member/this/bare-name
 *                       heuristics — each stamped with the mutex set
 *                       lexically held at that point.
 *
 * The walker is a token-level approximation: it never type-checks,
 * and every unrecognized construct degrades to "no index entry"
 * rather than a crash or a false finding. Soundness limits are
 * enumerated in DESIGN.md §15.
 */

#include "index.h"

#include <algorithm>

namespace emstress {
namespace lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> kw = {
        "alignas",     "alignof",   "auto",
        "bool",        "break",     "case",
        "catch",       "char",      "class",
        "co_await",    "co_return", "co_yield",
        "const",       "constexpr", "const_cast",
        "continue",    "decltype",  "default",
        "delete",      "do",        "double",
        "dynamic_cast","else",      "enum",
        "explicit",    "extern",    "false",
        "final",       "float",     "for",
        "friend",      "goto",      "if",
        "inline",      "int",       "long",
        "mutable",     "namespace", "new",
        "noexcept",    "not",       "nullptr",
        "operator",    "override",  "private",
        "protected",   "public",    "reinterpret_cast",
        "return",      "short",     "signed",
        "sizeof",      "static",    "static_assert",
        "static_cast", "struct",    "switch",
        "template",    "this",      "throw",
        "true",        "try",       "typedef",
        "typeid",      "typename",  "union",
        "unsigned",    "using",     "virtual",
        "void",        "volatile",  "while",
    };
    return kw;
}

bool
isKw(const std::string &s)
{
    return keywordSet().count(s) != 0;
}

bool
isMutexType(const std::string &s)
{
    return s == "mutex" || s == "recursive_mutex"
        || s == "shared_mutex" || s == "timed_mutex";
}

bool
isLockType(const std::string &s)
{
    return s == "lock_guard" || s == "unique_lock"
        || s == "scoped_lock" || s == "shared_lock";
}

/** Leading declaration qualifiers skipped when extracting the type
 *  head of a member declaration. */
bool
isDeclQualifier(const std::string &s)
{
    return s == "static" || s == "const" || s == "constexpr"
        || s == "mutable" || s == "inline" || s == "volatile"
        || s == "typename" || s == "explicit" || s == "virtual";
}

/** Keywords that may directly precede an expression use of an
 *  identifier — such a position is never a declaration. */
bool
isExprKeyword(const std::string &s)
{
    return s == "return" || s == "throw" || s == "case"
        || s == "delete" || s == "new" || s == "sizeof"
        || s == "typeid" || s == "else" || s == "do"
        || s == "co_return" || s == "co_yield" || s == "co_await";
}

/** Builder shared by both passes over one file. */
class FileWalker
{
public:
    FileWalker(ProjectIndex &ix,
               std::map<std::string, std::size_t> &class_by_chain,
               std::size_t file_idx, bool bodies)
        : ix_(ix), chains_(class_by_chain), fi_(file_idx),
          scan_(ix.scans[file_idx]), t_(ix.scans[file_idx].tokens),
          bodies_(bodies)
    {
        if (bodies_)
            for (const auto &kv : ix_.guarded_by_member)
                guarded_names_.insert(kv.first);
    }

    void run();

private:
    struct Scope
    {
        char kind = 'b'; ///< 'n' namespace, 'c' class, 'b' block.
        std::string name;
    };

    /** Candidate function classified from a `{` at type/ns scope. */
    struct FnCand
    {
        bool ok = false;
        std::string name;
        std::string cls; ///< Explicit `Cls::` qualifier, if any.
        std::size_t par_open = 0, par_close = 0;
    };

    // --- token helpers -------------------------------------------
    bool isP(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokKind::Punct
            && t_[i].text[0] == c;
    }
    bool isIdent(std::size_t i) const
    {
        return i < t_.size() && t_[i].kind == TokKind::Identifier;
    }
    bool isIdentText(std::size_t i, std::string_view s) const
    {
        return isIdent(i) && t_[i].text == s;
    }
    /** `::` is two ':' tokens; true when t_[i] starts one. */
    bool isColonColon(std::size_t i) const
    {
        return isP(i, ':') && isP(i + 1, ':');
    }

    std::size_t matchForward(std::size_t i) const
    {
        if (i >= t_.size() || t_[i].kind != TokKind::Punct)
            return t_.size() ? t_.size() - 1 : 0;
        const char open = t_[i].text[0];
        const char close = open == '(' ? ')'
            : open == '{'              ? '}'
            : open == '['              ? ']'
                                       : '\0';
        if (close == '\0')
            return i;
        int depth = 0;
        for (std::size_t j = i; j < t_.size(); ++j) {
            if (t_[j].kind != TokKind::Punct)
                continue;
            const char c = t_[j].text[0];
            if (c == open)
                ++depth;
            else if (c == close && --depth == 0)
                return j;
        }
        return t_.size() - 1;
    }

    std::size_t matchBack(std::size_t j) const
    {
        if (j >= t_.size() || t_[j].kind != TokKind::Punct)
            return kNpos;
        const char close = t_[j].text[0];
        const char open = close == ')' ? '('
            : close == '}'             ? '{'
            : close == ']'             ? '['
                                       : '\0';
        if (open == '\0')
            return kNpos;
        int depth = 0;
        for (std::size_t k = j + 1; k-- > 0;) {
            if (t_[k].kind != TokKind::Punct)
                continue;
            const char c = t_[k].text[0];
            if (c == close)
                ++depth;
            else if (c == open && --depth == 0)
                return k;
        }
        return kNpos;
    }

    /** From a `<` at i, skip a balanced template argument list.
     *  Returns the index past the matching `>`, or i + 1 when the
     *  `<` looks like a comparison (bail on ; { } or runaway). */
    std::size_t skipAngles(std::size_t i) const
    {
        int depth = 0;
        for (std::size_t j = i;
             j < t_.size() && j < i + 512; ++j) {
            if (t_[j].kind != TokKind::Punct)
                continue;
            const char c = t_[j].text[0];
            if (c == '<')
                ++depth;
            else if (c == '>' && --depth == 0)
                return j + 1;
            else if (c == ';' || c == '{' || c == '}')
                break;
        }
        return i + 1;
    }

    // --- scope helpers -------------------------------------------
    bool atTypeScope() const
    {
        return stack_.empty() || stack_.back().kind == 'n'
            || stack_.back().kind == 'c';
    }
    bool atClassScope() const
    {
        return !stack_.empty() && stack_.back().kind == 'c';
    }
    std::vector<std::string> classChain() const
    {
        std::vector<std::string> chain;
        for (const Scope &s : stack_)
            if (s.kind == 'c')
                chain.push_back(s.name);
        return chain;
    }

    std::size_t ensureClass(const std::vector<std::string> &chain)
    {
        std::string key;
        for (const std::string &c : chain)
            key += c + "::";
        const auto it = chains_.find(key);
        if (it != chains_.end())
            return it->second;
        ClassInfo info;
        info.name = chain.back();
        info.chain = chain;
        ix_.classes.push_back(std::move(info));
        const std::size_t idx = ix_.classes.size() - 1;
        chains_[key] = idx;
        ix_.class_by_name.emplace(chain.back(), idx);
        return idx;
    }

    // --- statement-level handlers --------------------------------
    void handleNamespace(std::size_t &i);
    bool handleClass(std::size_t &i);
    void handleEnum(std::size_t &i);
    void skipStatement(std::size_t &i);
    FnCand classifyBrace(std::size_t k) const;
    void registerFunction(const FnCand &cand, std::size_t brace);
    void processMemberStmt(std::size_t b, std::size_t e);
    void attachGuards(const std::string &member, int first_line,
                      int name_line);

    // --- body analysis (pass 2) ----------------------------------
    void collectBody(FunctionInfo &fn);
    void parseParams(const FunctionInfo &fn,
                     std::set<std::string> &shadowed,
                     std::set<std::string> &lock_params,
                     std::map<std::string, std::string> &types) const;
    std::string resolveMutexArg(std::size_t b, std::size_t e,
                                const std::vector<std::string> &chain)
        const;
    std::string findMutexOwner(const std::vector<std::string> &chain,
                               const std::string &name) const;
    std::string memberTypeOf(const std::vector<std::string> &chain,
                             const std::string &member) const;

    ProjectIndex &ix_;
    std::map<std::string, std::size_t> &chains_;
    const std::size_t fi_;
    const SourceScan &scan_;
    const std::vector<Token> &t_;
    const bool bodies_;
    std::vector<Scope> stack_;
    std::set<std::string> guarded_names_;
};

void
FileWalker::run()
{
    const std::size_t n = t_.size();
    std::size_t i = 0;
    std::size_t stmt = 0;
    while (i < n) {
        const Token &tok = t_[i];
        if (tok.kind == TokKind::Identifier) {
            const std::string &s = tok.text;
            if (s == "template" && isP(i + 1, '<')) {
                i = skipAngles(i + 1);
                stmt = i;
                continue;
            }
            if (atTypeScope()) {
                if (s == "namespace") {
                    handleNamespace(i);
                    stmt = i;
                    continue;
                }
                if (s == "class" || s == "struct" || s == "union") {
                    if (handleClass(i)) {
                        stmt = i;
                        continue;
                    }
                }
                if (s == "enum") {
                    handleEnum(i);
                    stmt = i;
                    continue;
                }
                if (s == "using" || s == "typedef" || s == "friend"
                    || s == "static_assert") {
                    skipStatement(i);
                    stmt = i;
                    continue;
                }
                if (atClassScope()
                    && (s == "public" || s == "private"
                        || s == "protected")
                    && isP(i + 1, ':') && !isP(i + 2, ':')) {
                    i += 2;
                    stmt = i;
                    continue;
                }
            }
            ++i;
            continue;
        }
        if (tok.kind == TokKind::Punct) {
            const char c = tok.text[0];
            if (c == '{') {
                if (atTypeScope()) {
                    const FnCand cand = classifyBrace(i);
                    if (cand.ok) {
                        registerFunction(cand, i);
                        i = matchForward(i) + 1;
                        stmt = i;
                        continue;
                    }
                    // Brace initializer or unrecognized construct:
                    // skip it wholesale, the statement continues.
                    i = matchForward(i) + 1;
                    continue;
                }
                stack_.push_back({'b', ""});
                ++i;
                stmt = i;
                continue;
            }
            if (c == '}') {
                if (!stack_.empty())
                    stack_.pop_back();
                ++i;
                stmt = i;
                continue;
            }
            if (c == ';') {
                if (!bodies_ && atClassScope())
                    processMemberStmt(stmt, i);
                ++i;
                stmt = i;
                continue;
            }
        }
        ++i;
    }
}

void
FileWalker::handleNamespace(std::size_t &i)
{
    std::size_t j = i + 1;
    // `namespace a`, `namespace a::b`, or anonymous.
    while (isIdent(j)) {
        ++j;
        if (isColonColon(j))
            j += 2;
        else
            break;
    }
    if (isP(j, '{')) {
        stack_.push_back({'n', ""});
        i = j + 1;
        return;
    }
    // Namespace alias or malformed: skip to `;`.
    while (j < t_.size() && !isP(j, ';'))
        ++j;
    i = j + 1;
}

bool
FileWalker::handleClass(std::size_t &i)
{
    std::size_t j = i + 1;
    std::string name;
    if (isIdent(j)) {
        name = t_[j].text;
        ++j;
    }
    int ang = 0, par = 0;
    for (; j < t_.size(); ++j) {
        if (t_[j].kind != TokKind::Punct)
            continue;
        const char c = t_[j].text[0];
        if (c == '<')
            ++ang;
        else if (c == '>' && ang > 0)
            --ang;
        else if (c == '(')
            ++par;
        else if (c == ')' && par > 0)
            --par;
        else if (c == '{' && ang == 0 && par == 0) {
            stack_.push_back({'c', name.empty() ? "<anon>" : name});
            if (!bodies_)
                ensureClass(classChain());
            i = j + 1;
            return true;
        } else if (c == ';' && ang == 0 && par == 0) {
            // Forward declaration (or an elaborated-type variable —
            // either way, no class body to enter).
            i = j + 1;
            return true;
        } else if (c == '}') {
            break; // Confused; treat the keyword as a plain token.
        }
    }
    ++i;
    return false;
}

void
FileWalker::handleEnum(std::size_t &i)
{
    std::size_t j = i + 1;
    if (isIdentText(j, "class") || isIdentText(j, "struct"))
        ++j;
    while (j < t_.size() && !isP(j, '{') && !isP(j, ';'))
        ++j;
    if (isP(j, '{'))
        j = matchForward(j);
    i = j + 1;
}

void
FileWalker::skipStatement(std::size_t &i)
{
    while (i < t_.size() && !isP(i, ';')) {
        if (isP(i, '{')) {
            i = matchForward(i) + 1;
            continue;
        }
        ++i;
    }
    if (i < t_.size())
        ++i;
}

FileWalker::FnCand
FileWalker::classifyBrace(std::size_t k) const
{
    // Step 1: walk backward over trailing specifiers to the `)` that
    // should close the parameter list (or a ctor-init-list item).
    std::size_t j = k;
    for (;;) {
        if (j == 0)
            return {};
        --j;
        const Token &tk = t_[j];
        if (tk.kind == TokKind::Identifier) {
            const std::string &s = tk.text;
            if (s == "const" || s == "noexcept" || s == "override"
                || s == "final" || s == "mutable" || s == "try")
                continue;
            // Possible trailing return type: scan back for `->`.
            std::size_t x = j;
            std::size_t steps = 0;
            bool arrow = false;
            while (x > 0 && steps < 48) {
                const Token &tx = t_[x];
                if (tx.kind == TokKind::Punct) {
                    const char pc = tx.text[0];
                    if (pc == '>' && isP(x - 1, '-')) {
                        arrow = true;
                        x -= 2;
                        break;
                    }
                    if (pc != ':' && pc != '<' && pc != '>'
                        && pc != '*' && pc != '&' && pc != ','
                        && pc != '(' && pc != ')')
                        return {};
                } else if (tx.kind != TokKind::Identifier) {
                    return {};
                }
                --x;
                ++steps;
            }
            if (!arrow)
                return {};
            j = x + 1; // Next `--j` lands on the token before `->`.
            continue;
        }
        if (tk.kind == TokKind::Punct && tk.text[0] == ')') {
            const std::size_t m = matchBack(j);
            if (m == kNpos)
                return {};
            if (m > 0 && isIdentText(m - 1, "noexcept")) {
                j = m; // `--j` then skips the `noexcept` identifier.
                continue;
            }
            break;
        }
        return {};
    }
    // Step 2: peel constructor-init-list items backward until the
    // `)` genuinely closing the parameter list is found.
    for (int guard = 0; guard < 64; ++guard) {
        const std::size_t m = matchBack(j);
        if (m == kNpos || m == 0)
            return {};
        const std::size_t c = m - 1;
        if (!isIdent(c))
            return {};
        std::string name = t_[c].text;
        if (isKw(name))
            return {};
        std::string cls;
        std::size_t q = c;
        while (q >= 3 && isP(q - 1, ':') && isP(q - 2, ':')
               && isIdent(q - 3)) {
            if (cls.empty())
                cls = t_[q - 3].text;
            q -= 3;
        }
        if (q == 0)
            return {true, name, cls, m, j};
        const Token &pb = t_[q - 1];
        if (pb.kind == TokKind::Punct && pb.text[0] == '~') {
            // Destructor. Pick up an out-of-class qualifier too.
            if (cls.empty() && q >= 4 && isP(q - 2, ':')
                && isP(q - 3, ':') && isIdent(q - 4))
                cls = t_[q - 4].text;
            return {true, "~" + name, cls, m, j};
        }
        bool init_sep = false;
        if (pb.kind == TokKind::Punct) {
            const char pc = pb.text[0];
            if (pc == ',') {
                init_sep = true;
            } else if (pc == ':') {
                if (q >= 2 && isP(q - 2, ':'))
                    return {}; // Stray `::` — give up.
                const bool access_label = q >= 2
                    && (isIdentText(q - 2, "public")
                        || isIdentText(q - 2, "private")
                        || isIdentText(q - 2, "protected"));
                init_sep = !access_label;
            }
        }
        if (!init_sep)
            return {true, name, cls, m, j};
        // Peel one init-list item: the previous group's `)` sits
        // just before the separator (for the `:` separator it is
        // the parameter list itself).
        if (q >= 2 && isP(q - 2, ')')) {
            j = q - 2;
            continue;
        }
        return {};
    }
    return {};
}

void
FileWalker::registerFunction(const FnCand &cand, std::size_t brace)
{
    FunctionInfo fn;
    fn.name = cand.name;
    if (!cand.cls.empty()) {
        fn.cls = cand.cls;
        const auto it = ix_.class_by_name.find(cand.cls);
        if (it != ix_.class_by_name.end())
            fn.chain = ix_.classes[it->second].chain;
        else
            fn.chain = {cand.cls};
    } else if (atClassScope()) {
        fn.chain = classChain();
        fn.cls = fn.chain.back();
    }
    fn.qualified = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
    fn.file = fi_;
    fn.line = t_[brace].line;
    if (cand.par_open + 1 <= cand.par_close) {
        fn.params_begin = cand.par_open + 1;
        fn.params_end = cand.par_close;
        if (fn.params_begin > 0 && isIdent(cand.par_open - 1))
            fn.line = t_[cand.par_open - 1].line;
    }
    fn.body_begin = brace + 1;
    fn.body_end = matchForward(brace);
    if (!bodies_) {
        // Structure pass: only record the method name on its class.
        if (!fn.cls.empty() && fn.cls != "<anon>") {
            const auto it = ix_.class_by_name.find(fn.cls);
            if (it != ix_.class_by_name.end())
                ix_.classes[it->second].methods.insert(fn.name);
        }
        return;
    }
    collectBody(fn);
    ix_.functions.push_back(std::move(fn));
    const FunctionInfo &stored = ix_.functions.back();
    ix_.functions_by_name[stored.qualified].push_back(
        ix_.functions.size() - 1);
}

void
FileWalker::attachGuards(const std::string &member, int first_line,
                         int name_line)
{
    // A comment on the line directly above only counts when it sits
    // on a line of its own: a trailing `// guards:` on the previous
    // member's declaration line must not spill onto this one.
    const auto ownLine = [&](int l) {
        const auto it = std::lower_bound(
            t_.begin(), t_.end(), l,
            [](const Token &tk, int want) { return tk.line < want; });
        return it == t_.end() || it->line != l;
    };
    std::set<int> lines = {first_line, name_line};
    if (ownLine(first_line - 1))
        lines.insert(first_line - 1);
    if (ownLine(name_line - 1))
        lines.insert(name_line - 1);
    const std::vector<std::string> chain = classChain();
    for (const int l : lines) {
        const auto it = scan_.guards.find(l);
        if (it == scan_.guards.end())
            continue;
        for (const std::string &m : it->second) {
            GuardedMember g;
            g.member = member;
            g.cls = chain.back();
            g.chain = chain;
            g.mutex = m;
            g.file = fi_;
            g.line = name_line;
            bool dup = false;
            for (const GuardedMember &e : ix_.guarded)
                if (e.member == g.member && e.cls == g.cls
                    && e.mutex == g.mutex)
                    dup = true;
            if (dup)
                continue;
            ix_.guarded.push_back(g);
            ix_.guarded_by_member[member].push_back(
                ix_.guarded.size() - 1);
        }
    }
}

void
FileWalker::processMemberStmt(std::size_t b, std::size_t e)
{
    if (b >= e)
        return;
    if (isIdent(b)) {
        const std::string &s = t_[b].text;
        if (s == "using" || s == "typedef" || s == "friend"
            || s == "static_assert" || s == "template"
            || s == "public" || s == "private" || s == "protected")
            return;
    }
    int ang = 0, par = 0;
    std::size_t init = e;
    std::size_t method_paren = kNpos;
    for (std::size_t j = b; j < e; ++j) {
        if (t_[j].kind != TokKind::Punct)
            continue;
        const char c = t_[j].text[0];
        if (c == '<') {
            ++ang;
        } else if (c == '>') {
            if (ang > 0)
                --ang;
        } else if (c == '(') {
            if (ang == 0 && par == 0 && init == e && j > b
                && isIdent(j - 1) && !isKw(t_[j - 1].text)
                && method_paren == kNpos)
                method_paren = j;
            ++par;
        } else if (c == ')') {
            if (par > 0)
                --par;
        } else if ((c == '=' || c == '{') && ang == 0 && par == 0
                   && init == e) {
            init = j;
        }
    }
    if (method_paren != kNpos
        && (init == e || init > matchForward(method_paren))) {
        const std::size_t idx = ensureClass(classChain());
        ix_.classes[idx].methods.insert(t_[method_paren - 1].text);
        return;
    }
    // Member variable: name is the last depth-0 identifier before
    // the initializer (the `// guards:` grammar requires one
    // declarator per statement, which the tree follows anyway).
    ang = par = 0;
    std::size_t name_i = kNpos;
    const std::size_t limit = init;
    for (std::size_t j = b; j < limit; ++j) {
        const Token &tk = t_[j];
        if (tk.kind == TokKind::Punct) {
            const char c = tk.text[0];
            if (c == '<')
                ++ang;
            else if (c == '>' && ang > 0)
                --ang;
            else if (c == '(')
                ++par;
            else if (c == ')' && par > 0)
                --par;
            continue;
        }
        if (tk.kind == TokKind::Identifier && ang == 0 && par == 0
            && !isKw(tk.text))
            name_i = j;
    }
    if (name_i == kNpos)
        return;
    const std::string name = t_[name_i].text;
    // Type head: last identifier of the leading qualified-id after
    // declaration qualifiers ("map" for std::map<...>, the class
    // name for plain members).
    std::size_t j = b;
    while (j < limit && isIdent(j) && isDeclQualifier(t_[j].text))
        ++j;
    std::string head;
    if (isIdent(j) && j != name_i) {
        head = t_[j].text;
        ++j;
        while (isColonColon(j) && isIdent(j + 2)
               && j + 2 != name_i) {
            head = t_[j + 2].text;
            j += 3;
        }
    }
    const std::size_t idx = ensureClass(classChain());
    if (!head.empty()) {
        ix_.classes[idx].member_types.emplace(name, head);
        if (isMutexType(head))
            ix_.classes[idx].mutex_members.insert(name);
    }
    attachGuards(name, t_[b].line, t_[name_i].line);
}

std::string
FileWalker::findMutexOwner(const std::vector<std::string> &chain,
                           const std::string &name) const
{
    for (std::size_t k = chain.size(); k-- > 0;) {
        const auto it = ix_.class_by_name.find(chain[k]);
        if (it == ix_.class_by_name.end())
            continue;
        if (ix_.classes[it->second].mutex_members.count(name))
            return chain[k] + "::" + name;
    }
    return "";
}

std::string
FileWalker::memberTypeOf(const std::vector<std::string> &chain,
                         const std::string &member) const
{
    for (std::size_t k = chain.size(); k-- > 0;) {
        const auto it = ix_.class_by_name.find(chain[k]);
        if (it == ix_.class_by_name.end())
            continue;
        const auto &types = ix_.classes[it->second].member_types;
        const auto mt = types.find(member);
        if (mt != types.end())
            return mt->second;
    }
    return "";
}

std::string
FileWalker::resolveMutexArg(std::size_t b, std::size_t e,
                            const std::vector<std::string> &chain)
    const
{
    // Reduce the argument to a member path: identifiers joined by
    // `.`, `->`, or `::`, ignoring `*`/`&` and casts.
    std::vector<std::string> parts;
    char last_sep = '\0';
    for (std::size_t j = b; j < e; ++j) {
        const Token &tk = t_[j];
        if (tk.kind == TokKind::Identifier) {
            if (parts.empty() || last_sep != '\0')
                parts.push_back(tk.text);
            else
                parts.back() = tk.text; // New path starts over.
            last_sep = '\0';
        } else if (tk.kind == TokKind::Punct) {
            const char c = tk.text[0];
            if (c == '.')
                last_sep = '.';
            else if (c == '>' && j > b && isP(j - 1, '-'))
                last_sep = '.';
            else if (c == ':' && isP(j + 1, ':')) {
                last_sep = ':';
                ++j;
            } else if (c == '*' || c == '&' || c == '-') {
                continue;
            } else if (c == '(' || c == ')') {
                continue;
            } else {
                parts.clear();
                last_sep = '\0';
            }
        }
    }
    if (parts.empty())
        return "";
    const std::string &last = parts.back();
    if (last == "adopt_lock" || last == "defer_lock"
        || last == "try_to_lock")
        return "";
    if (parts.size() == 1) {
        const std::string owned = findMutexOwner(chain, last);
        return owned.empty() ? last : owned;
    }
    if (parts.size() == 2) {
        // `obj.m` / `obj->m` / `Cls::m`: attribute through the
        // object member's class when known.
        const std::string ty = memberTypeOf(chain, parts[0]);
        if (!ty.empty()) {
            const auto it = ix_.class_by_name.find(ty);
            if (it != ix_.class_by_name.end()
                && ix_.classes[it->second].mutex_members.count(last))
                return ty + "::" + last;
        }
        const auto it = ix_.class_by_name.find(parts[0]);
        if (it != ix_.class_by_name.end()
            && ix_.classes[it->second].mutex_members.count(last))
            return parts[0] + "::" + last;
    }
    std::string joined = parts[0];
    for (std::size_t k = 1; k < parts.size(); ++k)
        joined += "." + parts[k];
    return joined;
}

void
FileWalker::parseParams(const FunctionInfo &fn,
                        std::set<std::string> &shadowed,
                        std::set<std::string> &lock_params,
                        std::map<std::string, std::string> &types) const
{
    std::size_t start = fn.params_begin;
    int ang = 0, par = 0, brace = 0;
    const auto flush = [&](std::size_t b, std::size_t e) {
        std::size_t stop = e;
        for (std::size_t j = b; j < e; ++j)
            if (isP(j, '=')) {
                stop = j;
                break;
            }
        std::size_t name_i = kNpos;
        std::size_t type_i = kNpos;
        bool is_lock = false;
        for (std::size_t j = b; j < stop; ++j) {
            if (!isIdent(j))
                continue;
            if (t_[j].text == "unique_lock")
                is_lock = true;
            if (!isKw(t_[j].text)) {
                type_i = name_i;
                name_i = j;
            }
        }
        if (name_i == kNpos)
            return;
        shadowed.insert(t_[name_i].text);
        if (type_i != kNpos)
            types[t_[name_i].text] = t_[type_i].text;
        if (is_lock)
            lock_params.insert(t_[name_i].text);
    };
    for (std::size_t j = fn.params_begin; j < fn.params_end; ++j) {
        if (t_[j].kind != TokKind::Punct)
            continue;
        const char c = t_[j].text[0];
        if (c == '<')
            ++ang;
        else if (c == '>' && ang > 0)
            --ang;
        else if (c == '(')
            ++par;
        else if (c == ')' && par > 0)
            --par;
        else if (c == '{')
            ++brace;
        else if (c == '}' && brace > 0)
            --brace;
        else if (c == ',' && ang == 0 && par == 0 && brace == 0) {
            flush(start, j);
            start = j + 1;
        }
    }
    if (fn.params_begin < fn.params_end)
        flush(start, fn.params_end);
}

void
FileWalker::collectBody(FunctionInfo &fn)
{
    struct Hold
    {
        std::string var;
        std::vector<std::string> mutexes;
        int depth = 0;
        bool engaged = true;
    };
    std::set<std::string> shadowed;
    std::set<std::string> lock_params;
    std::map<std::string, std::string> local_types;
    parseParams(fn, shadowed, lock_params, local_types);
    std::vector<Hold> holds;
    int depth = 1;
    bool param_drop = false;
    const std::size_t end = fn.body_end;

    const auto held = [&]() {
        std::vector<std::string> out;
        for (const Hold &h : holds) {
            if (!h.engaged)
                continue;
            for (const std::string &m : h.mutexes)
                if (std::find(out.begin(), out.end(), m) == out.end())
                    out.push_back(m);
        }
        return out;
    };

    std::size_t i = fn.body_begin;
    while (i < end && i < t_.size()) {
        const Token &tok = t_[i];
        if (tok.kind == TokKind::Punct) {
            const char c = tok.text[0];
            if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
                holds.erase(std::remove_if(holds.begin(), holds.end(),
                                           [&](const Hold &h) {
                                               return h.depth > depth;
                                           }),
                            holds.end());
            } else if (c == '[') {
                // Structured binding `auto [a, b]` / `auto &[a, b]`:
                // the bound names are local declarations, not member
                // accesses.
                const bool binding = (i > fn.body_begin
                                      && isIdentText(i - 1, "auto"))
                    || (i > fn.body_begin + 1 && isP(i - 1, '&')
                        && isIdentText(i - 2, "auto"));
                if (binding) {
                    std::size_t j = i + 1;
                    while (j < end && !isP(j, ']')) {
                        if (isIdent(j))
                            shadowed.insert(t_[j].text);
                        ++j;
                    }
                    i = j + 1;
                    continue;
                }
            }
            ++i;
            continue;
        }
        if (tok.kind != TokKind::Identifier) {
            ++i;
            continue;
        }
        const std::string &s = tok.text;

        // Lock declaration:
        //   [const] [std::] lock_guard|unique_lock|scoped_lock
        //   [<...>] var ( args ) ;
        {
            std::size_t j = i;
            if (isIdentText(j, "const"))
                ++j;
            if (isIdentText(j, "std") && isColonColon(j + 1))
                j += 3;
            if (isIdent(j) && isLockType(t_[j].text)) {
                std::size_t k = j + 1;
                if (isP(k, '<'))
                    k = skipAngles(k);
                if (isIdent(k)
                    && (isP(k + 1, '(') || isP(k + 1, '{'))) {
                    const std::string var = t_[k].text;
                    const std::size_t close = matchForward(k + 1);
                    // Split the ctor args on top-level commas.
                    std::vector<std::string> mutexes;
                    std::size_t ab = k + 2;
                    int ap = 0, abr = 0, aang = 0;
                    for (std::size_t a = k + 2; a <= close; ++a) {
                        const bool at_end = a == close;
                        bool comma = false;
                        if (!at_end
                            && t_[a].kind == TokKind::Punct) {
                            const char ac = t_[a].text[0];
                            if (ac == '(')
                                ++ap;
                            else if (ac == ')' && ap > 0)
                                --ap;
                            else if (ac == '{')
                                ++abr;
                            else if (ac == '}' && abr > 0)
                                --abr;
                            else if (ac == '<')
                                ++aang;
                            else if (ac == '>' && aang > 0)
                                --aang;
                            else if (ac == ',' && ap == 0
                                     && abr == 0 && aang == 0)
                                comma = true;
                        }
                        if (comma || at_end) {
                            if (a > ab) {
                                const std::string m = resolveMutexArg(
                                    ab, a, fn.chain);
                                if (!m.empty())
                                    mutexes.push_back(m);
                            }
                            ab = a + 1;
                        }
                    }
                    for (const std::string &m : mutexes) {
                        LockAcquire acq;
                        acq.mutex = m;
                        acq.line = tok.line;
                        acq.held = held();
                        acq.inferred_active = !param_drop;
                        fn.acquires.push_back(std::move(acq));
                    }
                    holds.push_back({var, mutexes, depth, true});
                    shadowed.insert(var);
                    i = close + 1;
                    continue;
                }
            }
        }

        // var.unlock() / var.lock() on a tracked lock object or a
        // unique_lock parameter (the stepJob pattern).
        if (isP(i + 1, '.') && isIdent(i + 2)
            && (t_[i + 2].text == "unlock"
                || t_[i + 2].text == "lock")
            && isP(i + 3, '(')) {
            const bool engage = t_[i + 2].text == "lock";
            bool matched = false;
            for (Hold &h : holds) {
                if (h.var != s)
                    continue;
                matched = true;
                if (engage && !h.engaged) {
                    const std::vector<std::string> cur = held();
                    for (const std::string &m : h.mutexes) {
                        LockAcquire acq;
                        acq.mutex = m;
                        acq.line = tok.line;
                        acq.held = cur;
                        acq.inferred_active = !param_drop;
                        fn.acquires.push_back(std::move(acq));
                    }
                }
                h.engaged = engage;
            }
            if (!matched && lock_params.count(s))
                param_drop = !engage;
            i = matchForward(i + 3) + 1;
            continue;
        }

        const bool prev_dot = i > fn.body_begin && isP(i - 1, '.');
        const bool prev_arrow = i > fn.body_begin + 1
            && isP(i - 1, '>') && isP(i - 2, '-');
        const bool prev_colon = i > fn.body_begin && isP(i - 1, ':');
        const bool member_path = prev_dot || prev_arrow;

        // Local declaration with a known class type: remember the
        // variable's class so `var.member` accesses can resolve
        // their base object instead of matching by name alone.
        if (!member_path && !prev_colon
            && ix_.class_by_name.count(s) && !isP(i + 1, ':')) {
            std::size_t j = i + 1;
            while (isP(j, '&') || isP(j, '*'))
                ++j;
            if (isIdent(j) && !isKw(t_[j].text)
                && (isP(j + 1, ';') || isP(j + 1, '=')
                    || isP(j + 1, '(') || isP(j + 1, '{')))
                local_types[t_[j].text] = s;
        }

        // Guarded-member access site.
        if (!prev_colon && guarded_names_.count(s)) {
            bool skip = false;
            if (!member_path) {
                if (shadowed.count(s)) {
                    skip = true;
                } else {
                    // Local declaration shadowing the member name?
                    bool decl_prev = false;
                    if (i > fn.body_begin) {
                        const Token &p = t_[i - 1];
                        if (p.kind == TokKind::Identifier)
                            decl_prev = !isExprKeyword(p.text);
                        else if (p.kind == TokKind::Punct)
                            decl_prev = p.text[0] == '>'
                                || p.text[0] == '*'
                                || p.text[0] == '&';
                    }
                    const bool decl_next = isP(i + 1, '=')
                        || isP(i + 1, ';') || isP(i + 1, ',');
                    if (decl_prev && decl_next
                        && !isP(i + 2, '=')) {
                        shadowed.insert(s);
                        skip = true;
                    }
                }
            }
            if (!skip) {
                MemberAccess acc;
                acc.member = s;
                acc.line = tok.line;
                acc.held = held();
                acc.inferred_active = !param_drop;
                if (member_path) {
                    const std::size_t b = prev_dot ? i - 2 : i - 3;
                    if (isIdent(b)) {
                        const std::string &base = t_[b].text;
                        const auto lt = local_types.find(base);
                        if (lt != local_types.end()
                            && ix_.class_by_name.count(lt->second))
                            acc.base_cls = lt->second;
                        else if (base == "this" && !fn.cls.empty())
                            acc.base_cls = fn.cls;
                        else {
                            const std::string mt =
                                memberTypeOf(fn.chain, base);
                            if (!mt.empty()
                                && ix_.class_by_name.count(mt))
                                acc.base_cls = mt;
                        }
                    }
                }
                fn.accesses.push_back(std::move(acc));
            }
        }

        // Call site.
        if (isP(i + 1, '(') && !isKw(s) && !isLockType(s)) {
            std::string callee = s;
            bool record = true;
            if (member_path) {
                const std::size_t b = prev_dot ? i - 2 : i - 3;
                if (isP(b, ')')) {
                    // `Cls::instance().m(...)` singleton chain.
                    const std::size_t m = matchBack(b);
                    if (m != kNpos && m > 0
                        && isIdentText(m - 1, "instance") && m >= 4
                        && isP(m - 2, ':') && isP(m - 3, ':')
                        && isIdent(m - 4))
                        callee = t_[m - 4].text + "::" + s;
                } else if (isIdent(b)) {
                    const std::string &base = t_[b].text;
                    if (base == "this") {
                        if (!fn.cls.empty())
                            callee = fn.cls + "::" + s;
                    } else {
                        const std::string ty =
                            memberTypeOf(fn.chain, base);
                        if (!ty.empty()
                            && ix_.class_by_name.count(ty))
                            callee = ty + "::" + s;
                    }
                }
            } else if (prev_colon) {
                // Qualified call `Q::f(...)`.
                if (i >= 3 && isP(i - 2, ':') && isIdent(i - 3)) {
                    const std::string &q = t_[i - 3].text;
                    if (q == "std")
                        record = false;
                    else
                        callee = q + "::" + s;
                } else {
                    record = false;
                }
            } else {
                for (std::size_t k = fn.chain.size(); k-- > 0;) {
                    const auto it =
                        ix_.class_by_name.find(fn.chain[k]);
                    if (it == ix_.class_by_name.end())
                        continue;
                    if (ix_.classes[it->second].methods.count(s)) {
                        callee = fn.chain[k] + "::" + s;
                        break;
                    }
                }
            }
            if (record) {
                IndexCallSite call;
                call.callee = callee;
                call.line = tok.line;
                call.held = held();
                call.inferred_active = !param_drop;
                fn.calls.push_back(std::move(call));
            }
        }
        ++i;
    }
}

} // namespace

ProjectIndex
buildProjectIndex(std::vector<ProjectFile> files)
{
    ProjectIndex ix;
    ix.files = std::move(files);
    ix.scans.reserve(ix.files.size());
    for (const ProjectFile &f : ix.files)
        ix.scans.push_back(scanSource(f.text));

    std::map<std::string, std::size_t> class_by_chain;
    for (std::size_t i = 0; i < ix.files.size(); ++i)
        FileWalker(ix, class_by_chain, i, false).run();

    // Resolve guard mutex names now that every class's mutex members
    // are known: a bare name binds to the nearest enclosing class of
    // the annotated member that declares such a mutex.
    for (GuardedMember &g : ix.guarded) {
        if (g.mutex.find(':') != std::string::npos)
            continue;
        for (std::size_t k = g.chain.size(); k-- > 0;) {
            const auto it = ix.class_by_name.find(g.chain[k]);
            if (it == ix.class_by_name.end())
                continue;
            if (ix.classes[it->second].mutex_members.count(g.mutex)) {
                g.mutex = g.chain[k] + "::" + g.mutex;
                break;
            }
        }
    }

    for (std::size_t i = 0; i < ix.files.size(); ++i)
        FileWalker(ix, class_by_chain, i, true).run();
    return ix;
}

} // namespace lint
} // namespace emstress
