/**
 * @file
 * Rule implementations R1–R5. Each rule walks the token stream from
 * scanner.cc and emits findings; annotation tags and fix-list entries
 * filter them before analyzeSource returns. The rules are heuristic
 * by design — a lightweight scanner cannot resolve types — but every
 * heuristic is tuned so that the repository's real determinism bug
 * classes (DESIGN.md §10) are inside the detected set and the
 * legitimate sites are expressible as annotations.
 */

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>

#include "scanner.h"

namespace emstress {
namespace lint {

namespace {

bool
pathEndsWith(std::string_view path, std::string_view suffix)
{
    if (path.size() < suffix.size())
        return false;
    if (path.substr(path.size() - suffix.size()) != suffix)
        return false;
    // Component-aligned: "rng.h" must not match "xrng.h".
    if (path.size() == suffix.size())
        return true;
    const char before = path[path.size() - suffix.size() - 1];
    return before == '/' || before == '\\';
}

bool
isHeaderPath(std::string_view path)
{
    return path.size() >= 2
        && path.substr(path.size() - 2) == ".h";
}

std::string_view
baseName(std::string_view path)
{
    const std::size_t slash = path.find_last_of("/\\");
    return slash == std::string_view::npos ? path
                                           : path.substr(slash + 1);
}

/** True for files under the service layer (src/service/...). */
bool
inServiceDir(std::string_view path)
{
    return path.find("src/service/") != std::string_view::npos
        || path.rfind("service/", 0) == 0;
}

/**
 * The service's sanctioned I/O-and-time boundary: transport files
 * (socket syscalls + the waits they imply) and the scheduler
 * (queue-wait/latency observability). Worker evaluation paths are
 * everything else and stay clock- and socket-free.
 */
bool
isServiceTransportFile(std::string_view path)
{
    return inServiceDir(path)
        && baseName(path).rfind("transport", 0) == 0;
}

bool
isServiceSchedulerFile(std::string_view path)
{
    return inServiceDir(path)
        && baseName(path).rfind("scheduler", 0) == 0;
}

/** Tags that silence a rule: its semantic tag(s) plus the rule id. */
struct RuleTags
{
    const char *id;
    std::vector<std::string> tags;
};

void
emit(std::vector<Finding> &findings, const SourceScan &scan,
     const RuleTags &rule, std::string_view path, int line,
     std::string message)
{
    Finding f;
    f.file = std::string(path);
    f.line = line;
    f.rule = rule.id;
    f.message = std::move(message);
    // Annotated findings are kept but marked, so the JSON report can
    // audit every suppression; analyzeSource drops them at the end.
    for (const std::string &tag : rule.tags) {
        if (scan.hasTag(line, tag)) {
            f.suppressed = true;
            f.suppression = "annotation:" + tag;
            break;
        }
    }
    findings.push_back(std::move(f));
}

// --------------------------------------------------------------- R1

const std::set<std::string, std::less<>> kClockIdents = {
    "steady_clock", "system_clock", "high_resolution_clock",
    "clock_gettime", "gettimeofday", "timespec_get"};

const std::set<std::string, std::less<>> kRandomIdents = {
    "rand", "srand", "random_device", "rand_r", "drand48"};

/**
 * R1: nondeterministic sources. Wall clocks, libc randomness,
 * std::random_device and getenv taint any value derived from them
 * with run-to-run variation. All randomness must flow through the
 * seeded util/rng.h streams; clocks are allowed only at annotated
 * timing-stats sites (values that feed wall-time accounting, never
 * fitness); getenv only at annotated env-config sites (operational
 * knobs such as thread counts that the determinism tests prove
 * result-neutral) or parity-tolerance sites (knobs that switch
 * between solver implementations agreeing only to a documented,
 * test-pinned numerical tolerance — honest about not being
 * bit-neutral, unlike env-config).
 */
void
ruleR1(std::string_view path, const SourceScan &scan,
       std::vector<Finding> &findings)
{
    if (pathEndsWith(path, "src/util/rng.h")
        || pathEndsWith(path, "util/rng.h"))
        return;
    // util/metrics.h is the sanctioned home for wall/CPU clock reads
    // (observability only), exactly as util/rng.h is for randomness.
    // The exemption is clock-scoped: randomness and environment
    // reads in that header are still findings.
    const bool metrics_home =
        pathEndsWith(path, "src/util/metrics.h")
        || pathEndsWith(path, "util/metrics.h");
    // The service's transport and scheduler files may read clocks
    // (connection deadlines, queue-wait/latency observability);
    // worker evaluation paths never may — a clock folded into an
    // evaluation breaks the bit-identity contract (DESIGN.md §13).
    const bool service_clock_home = isServiceTransportFile(path)
        || isServiceSchedulerFile(path);
    const RuleTags clock_rule{"R1", {"timing-stats", "r1"}};
    const RuleTags env_rule{"R1", {"env-config", "parity-tolerance",
                                   "r1"}};
    const RuleTags random_rule{"R1", {"r1"}};
    for (const Token &tok : scan.tokens) {
        if (tok.kind != TokKind::Identifier)
            continue;
        if (kClockIdents.count(tok.text)) {
            if (metrics_home || service_clock_home)
                continue;
            emit(findings, scan, clock_rule, path, tok.line,
                 "nondeterministic clock `" + tok.text
                     + "`; derive results from seeded streams "
                       "(util/rng.h) and annotate genuine wall-time "
                       "accounting with `// lint: timing-stats`");
        } else if (tok.text == "getenv") {
            emit(findings, scan, env_rule, path, tok.line,
                 "environment read `getenv` can seed run-to-run "
                 "variation; annotate result-neutral operational "
                 "knobs with `// lint: env-config`, or solver-path "
                 "switches with a documented tolerance contract with "
                 "`// lint: parity-tolerance`");
        } else if (kRandomIdents.count(tok.text)) {
            emit(findings, scan, random_rule, path, tok.line,
                 "unseeded randomness `" + tok.text
                     + "`; all stochastic draws must come from an "
                       "explicitly seeded emstress::Rng "
                       "(src/util/rng.h)");
        }
    }
}

// --------------------------------------------------------------- R2

const std::set<std::string, std::less<>> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/**
 * Collect the names declared with an unordered container type in
 * this file (locals, members, and functions returning one — calling
 * and iterating such a function is just as order-dependent).
 */
std::set<std::string, std::less<>>
unorderedNames(const SourceScan &scan)
{
    std::set<std::string, std::less<>> names;
    const auto &toks = scan.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier
            || !kUnorderedTypes.count(toks[i].text))
            continue;
        std::size_t j = i + 1;
        // Skip the template argument list, if any.
        if (j < toks.size() && toks[j].text == "<") {
            int depth = 0;
            for (; j < toks.size(); ++j) {
                if (toks[j].text == "<")
                    ++depth;
                else if (toks[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip cv/ref/pointer decorations to the declared name.
        while (j < toks.size()
               && (toks[j].text == "&" || toks[j].text == "*"
                   || toks[j].text == "const"))
            ++j;
        if (j < toks.size()
            && toks[j].kind == TokKind::Identifier)
            names.insert(toks[j].text);
    }
    return names;
}

/**
 * R2: iteration over unordered containers. Hash-map iteration order
 * is implementation- and insertion-history-dependent; folding it
 * into any result (merged stats, accumulated fitness, emitted rows)
 * breaks bit-identity across thread counts and library versions.
 * Detected: range-for over a name declared unordered in this file,
 * and `.begin()`/`.cbegin()`/`.equal_range()` on such a name. Sites
 * proven order-independent (e.g. first-match lookups keyed by full
 * equality) carry `// lint: ordered-merge`.
 */
void
ruleR2(std::string_view path, const SourceScan &scan,
       const SourceScan *companion, std::vector<Finding> &findings)
{
    auto names = unorderedNames(scan);
    if (companion != nullptr)
        names.merge(unorderedNames(*companion));
    if (names.empty())
        return;
    const RuleTags rule{"R2", {"ordered-merge", "r2"}};
    const auto &toks = scan.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        // name . begin / cbegin / equal_range
        if (toks[i].kind == TokKind::Identifier
            && names.count(toks[i].text) && toks[i + 1].text == "."
            && i + 2 < toks.size()) {
            const std::string &m = toks[i + 2].text;
            if (m == "begin" || m == "cbegin"
                || m == "equal_range") {
                emit(findings, scan, rule, path, toks[i].line,
                     "iteration over unordered container `"
                         + toks[i].text
                         + "` — hash order leaks into results; sort "
                           "keys or iterate an index, or annotate a "
                           "proven-order-independent site with "
                           "`// lint: ordered-merge`");
            }
        }
        // for ( ... : name )
        if (toks[i].kind == TokKind::Identifier
            && toks[i].text == "for" && toks[i + 1].text == "(") {
            int depth = 0;
            bool saw_colon = false;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")" && --depth == 0)
                    break;
                else if (depth == 1 && toks[j].text == ":"
                         && toks[j - 1].text != ":"
                         && j + 1 < toks.size()
                         && toks[j + 1].text != ":")
                    saw_colon = true;
                else if (saw_colon
                         && toks[j].kind == TokKind::Identifier
                         && names.count(toks[j].text)) {
                    emit(findings, scan, rule, path, toks[i].line,
                         "range-for over unordered container `"
                             + toks[j].text
                             + "` — hash order leaks into results; "
                               "sort keys or iterate an index, or "
                               "annotate with "
                               "`// lint: ordered-merge`");
                    break;
                }
            }
        }
    }
}

// --------------------------------------------------------------- R3

/**
 * R3: floating-point loop-carried accumulation as a sweep index.
 * `for (double v = a; v > b; v -= s)` accumulates one rounding error
 * per iteration, so the visited grid depends on the step history —
 * the PR 1 ResonanceExplorer/SclResonanceFinder bug class. Sweeps
 * must be integer-indexed with the value recomputed as
 * `start + i * step` each iteration.
 */
void
ruleR3(std::string_view path, const SourceScan &scan,
       std::vector<Finding> &findings)
{
    const RuleTags rule{"R3", {"r3"}};
    const auto &toks = scan.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "for"
            || toks[i].kind != TokKind::Identifier
            || toks[i + 1].text != "(")
            continue;
        // Split the header into init / cond / increment segments.
        int depth = 0;
        std::size_t seg = 0; // 0=init 1=cond 2=inc
        bool fp_init = false;
        std::string var;
        bool var_in_inc = false;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (t.text == "(" || t.text == "[" || t.text == "{") {
                ++depth;
                continue;
            }
            if (t.text == ")" || t.text == "]" || t.text == "}") {
                if (--depth == 0)
                    break;
                continue;
            }
            if (depth == 1 && t.text == ";") {
                ++seg;
                continue;
            }
            if (seg == 0 && t.kind == TokKind::Identifier) {
                if (t.text == "double" || t.text == "float")
                    fp_init = true;
                else if (fp_init && var.empty())
                    var = t.text;
            } else if (seg == 2 && !var.empty()
                       && t.kind == TokKind::Identifier
                       && t.text == var) {
                var_in_inc = true;
            }
        }
        if (fp_init && var_in_inc) {
            emit(findings, scan, rule, path, toks[i].line,
                 "floating-point sweep variable `" + var
                     + "` accumulates rounding error per iteration; "
                       "use an integer index and recompute "
                       "`start + i * step`");
        }
    }
}

// --------------------------------------------------------------- R4

/**
 * True for literals like `120e6`, `1.2e9`, `20e+3` whose exponent is
 * a kilo/mega/giga/tera magnitude. Negative exponents are deliberate
 * non-findings: `milli(0.15)` is *not* bit-identical to `0.15e-3`
 * (two roundings instead of one), so converting them would violate
 * the very invariant this pass protects.
 */
bool
isUnitMagnitudeLiteral(std::string_view text)
{
    std::size_t e = text.find_first_of("eE");
    if (e == std::string_view::npos || e == 0)
        return false;
    for (std::size_t i = 0; i < e; ++i)
        if (!std::isdigit(static_cast<unsigned char>(text[i]))
            && text[i] != '.' && text[i] != '\'')
            return false;
    std::string_view exp = text.substr(e + 1);
    if (!exp.empty() && exp.front() == '+')
        exp.remove_prefix(1);
    while (!exp.empty()
           && (exp.back() == 'f' || exp.back() == 'F'
               || exp.back() == 'l' || exp.back() == 'L'))
        exp.remove_suffix(1);
    return exp == "3" || exp == "6" || exp == "9" || exp == "12";
}

/**
 * R4: raw unit-magnitude literals. `120e6` in result-producing code
 * should be `mega(120.0)` (util/units.h): the helpers are bit-exact
 * for positive decimal magnitudes (the multiplier is an exact
 * integer double, verified in tests/test_lint.cc) and make the unit
 * reviewable. Calibration tables copied verbatim from datasheets may
 * keep the raw form under `// lint: datasheet`.
 */
void
ruleR4(std::string_view path, const SourceScan &scan,
       std::vector<Finding> &findings)
{
    if (pathEndsWith(path, "util/units.h"))
        return; // the defining file spells the multipliers out
    const RuleTags rule{"R4", {"datasheet", "r4"}};
    for (const Token &tok : scan.tokens) {
        if (tok.kind != TokKind::Number
            || !isUnitMagnitudeLiteral(tok.text))
            continue;
        emit(findings, scan, rule, path, tok.line,
             "raw unit-magnitude literal `" + tok.text
                 + "`; use the bit-exact util/units.h helper "
                   "(kilo/mega/giga) or annotate a datasheet "
                   "constant with `// lint: datasheet`");
    }
}

// --------------------------------------------------------------- R5

/**
 * Canonical guard for a header path: EMSTRESS_<REL>_H where <REL> is
 * the path after the last `src/` component (or the whole relative
 * path if none), uppercased with separators and dots mapped to `_`.
 */
std::string
canonicalGuard(std::string_view path)
{
    std::string p(path);
    std::replace(p.begin(), p.end(), '\\', '/');
    const std::size_t src = p.rfind("src/");
    std::string rel = src == std::string::npos
        ? p
        : p.substr(src + 4);
    while (rel.rfind("./", 0) == 0)
        rel.erase(0, 2);
    std::string guard = "EMSTRESS_";
    for (char c : rel) {
        if (c == '/' || c == '.')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

/**
 * R5 (static half): every header opens with the canonical
 * `#ifndef EMSTRESS_<PATH>_H` / `#define` pair. Guard collisions
 * silently drop a header's contents from dependent TUs, which is how
 * "works in this TU only" include-order coupling sneaks in; the
 * compile half (every header builds as its own TU) is the generated
 * `header-selfcheck` CMake target.
 */
void
ruleR5(std::string_view path, const SourceScan &scan,
       std::vector<Finding> &findings)
{
    if (!isHeaderPath(path))
        return;
    const RuleTags rule{"R5", {"r5"}};
    const std::string want = canonicalGuard(path);
    const auto &toks = scan.tokens;
    // First tokens of a well-formed header: # ifndef GUARD # define
    // GUARD (comments never produce tokens).
    if (toks.size() < 6 || toks[0].text != "#"
        || toks[1].text != "ifndef"
        || toks[2].kind != TokKind::Identifier
        || toks[3].text != "#" || toks[4].text != "define"
        || toks[5].text != toks[2].text) {
        emit(findings, scan, rule, path,
             toks.empty() ? 1 : toks[0].line,
             "header must open with the canonical include guard "
             "`#ifndef " + want + "` / `#define " + want + "`");
        return;
    }
    if (toks[2].text != want) {
        emit(findings, scan, rule, path, toks[2].line,
             "include guard `" + toks[2].text
                 + "` is not canonical; expected `" + want
                 + "` (collisions drop header contents and create "
                   "include-order coupling)");
    }
}

// --------------------------------------------------------------- R6

/**
 * Socket-layer syscalls and address helpers. `bind` is deliberately
 * absent (std::bind / placeholder bind expressions would be constant
 * false positives) and `close`/`shutdown` likewise (both are common
 * method names across the repo); the remaining set cannot appear in
 * a compiling network path without at least one of these, so the
 * confinement holds without them.
 */
const std::set<std::string, std::less<>> kSocketIdents = {
    "socket", "accept", "listen", "connect", "setsockopt",
    "getsockopt", "getsockname", "getpeername", "getaddrinfo",
    "freeaddrinfo", "recv", "send", "recvmsg", "sendmsg", "recvfrom",
    "sendto", "inet_pton", "inet_ntop", "inet_addr"};

/**
 * R6: socket syscalls outside the service transport layer. All
 * network I/O lives in src/service/transport* — the wire boundary
 * the determinism tests pin bit-exactly. A socket call anywhere else
 * (worker evaluation paths, the scheduler, benches) would let peer
 * timing or payload bytes leak into result-producing code, which no
 * annotation can make safe; the `socket-transport` tag exists for
 * the rare sanctioned helper that lives outside those files but is
 * still transport-only plumbing.
 */
void
ruleR6(std::string_view path, const SourceScan &scan,
       std::vector<Finding> &findings)
{
    if (isServiceTransportFile(path))
        return;
    const RuleTags rule{"R6", {"socket-transport", "r6"}};
    for (const Token &tok : scan.tokens) {
        if (tok.kind != TokKind::Identifier
            || !kSocketIdents.count(tok.text))
            continue;
        emit(findings, scan, rule, path, tok.line,
             "socket syscall `" + tok.text
                 + "` outside the service transport layer; network "
                   "I/O is confined to src/service/transport* so "
                   "peer timing can never reach result-producing "
                   "code (sanctioned plumbing may annotate with "
                   "`// lint: socket-transport`)");
    }
}

} // namespace

std::vector<Finding>
analyzeSourceAll(std::string_view path, std::string_view text,
                 const Options &options)
{
    const SourceScan scan = scanSource(text);
    std::vector<Finding> findings;
    ruleR1(path, scan, findings);
    if (options.companion.empty()) {
        ruleR2(path, scan, nullptr, findings);
    } else {
        const SourceScan companion = scanSource(options.companion);
        ruleR2(path, scan, &companion, findings);
    }
    ruleR3(path, scan, findings);
    ruleR4(path, scan, findings);
    ruleR5(path, scan, findings);
    ruleR6(path, scan, findings);

    for (Finding &f : findings) {
        if (f.suppressed)
            continue;
        for (const FixListEntry &e : options.fixlist) {
            if (!matchesFixList(e, f))
                continue;
            f.suppressed = true;
            f.suppression = "fix-list:" + e.rule + " " + e.path
                + (e.line > 0 ? " " + std::to_string(e.line) : "");
            break;
        }
    }
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return findings;
}

std::vector<Finding>
analyzeSource(std::string_view path, std::string_view text,
              const Options &options)
{
    std::vector<Finding> findings =
        analyzeSourceAll(path, text, options);
    std::erase_if(findings,
                  [](const Finding &f) { return f.suppressed; });
    return findings;
}

std::string
formatFinding(const Finding &finding)
{
    std::ostringstream os;
    os << finding.file << ':' << finding.line << ": ["
       << finding.rule << "] " << finding.message;
    return os.str();
}

} // namespace lint
} // namespace emstress
