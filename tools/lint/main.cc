/**
 * @file
 * emstress-lint command-line driver. Walks the given roots (or
 * explicit files, or the translation units named by a CMake
 * `compile_commands.json` plus their quoted-include closure), runs
 * the per-file determinism rules (R1-R6) over every .h/.cc, runs the
 * cross-TU rules (R7-R9) over the whole file set at once, and prints
 * `file:line: [Rn] message` diagnostics.
 *
 *   emstress-lint [--root DIR]... [--fix-list FILE]
 *                 [--compile-commands FILE] [--json FILE]
 *                 [--github] [files...]
 *
 * --json writes the machine-readable `emstress-lint-findings-v1`
 * report (suppressed findings included, marked); --github
 * additionally prints GitHub Actions workflow commands so CI runs
 * surface findings as inline annotations. Exit status: 0 clean,
 * 1 unsuppressed findings, 2 usage/IO error. The file walk is sorted
 * so output order — like everything else in this repository — is
 * deterministic. Directories named `testdata` are skipped: they hold
 * deliberately-violating lint fixtures.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using emstress::lint::Finding;
using emstress::lint::Options;
using emstress::lint::ProjectFile;

namespace {

int
usage(std::ostream &os)
{
    os << "usage: emstress-lint [--root DIR]... [--fix-list FILE]"
          " [--compile-commands FILE]\n"
          "                     [--json FILE] [--github]"
          " [files...]\n"
          "Static determinism lint for emstress (rules R1-R9, see"
          " tools/lint/README.md).\n";
    return 2;
}

bool
isSourcePath(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp"
        || ext == ".hpp";
}

/** True when `p` sits under a `testdata` directory *inside* `root`.
 *  A root that itself lies in testdata (linting a fixture tree by
 *  naming it as the root) is deliberately not excluded. */
bool
inTestdataUnder(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    if (ec)
        return false;
    for (const fs::path &part : rel)
        if (part == "testdata")
            return true;
    return false;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/**
 * Pull the "directory"/"file" pairs out of a CMake
 * compile_commands.json. A full JSON parser is overkill for CMake's
 * regular output; this scanner pairs each "file" value with the most
 * recently seen "directory" value and understands the two escapes
 * (backslash, quote) CMake can emit in POSIX paths.
 */
std::vector<fs::path>
parseCompileCommands(const std::string &text)
{
    std::vector<fs::path> out;
    std::string directory;
    std::size_t i = 0;
    const auto parseString = [&](std::size_t from,
                                 std::string &value) {
        std::size_t j = from;
        value.clear();
        while (j < text.size() && text[j] != '"') {
            if (text[j] == '\\' && j + 1 < text.size()) {
                value += text[j + 1];
                j += 2;
            } else {
                value += text[j];
                ++j;
            }
        }
        return j < text.size() ? j + 1 : j;
    };
    while (i < text.size()) {
        if (text[i] != '"') {
            ++i;
            continue;
        }
        std::string key;
        i = parseString(i + 1, key);
        if (key != "directory" && key != "file")
            continue;
        while (i < text.size() && text[i] != ':')
            ++i;
        while (i < text.size() && text[i] != '"')
            ++i;
        if (i >= text.size())
            break;
        std::string value;
        i = parseString(i + 1, value);
        if (key == "directory") {
            directory = value;
        } else {
            fs::path p(value);
            if (p.is_relative() && !directory.empty())
                p = fs::path(directory) / p;
            out.push_back(std::move(p));
        }
    }
    return out;
}

/** Quoted includes of one source text, in order of appearance. */
std::vector<std::string>
quotedIncludes(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = text.find("#include", pos)) != std::string::npos) {
        std::size_t j = pos + 8;
        while (j < text.size()
               && (text[j] == ' ' || text[j] == '\t'))
            ++j;
        if (j < text.size() && text[j] == '"') {
            const std::size_t end = text.find('"', j + 1);
            if (end != std::string::npos)
                out.push_back(text.substr(j + 1, end - j - 1));
        }
        pos = j;
    }
    return out;
}

std::string
canonicalKey(const fs::path &p)
{
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(p, ec);
    return (ec ? p : canon).generic_string();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    std::vector<fs::path> files;
    fs::path fixlist_path;
    fs::path compile_commands_path;
    fs::path json_path;
    bool github = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc)
                return usage(std::cerr);
            roots.emplace_back(argv[i]);
        } else if (arg == "--fix-list") {
            if (++i >= argc)
                return usage(std::cerr);
            fixlist_path = argv[i];
        } else if (arg == "--compile-commands") {
            if (++i >= argc)
                return usage(std::cerr);
            compile_commands_path = argv[i];
        } else if (arg == "--json") {
            if (++i >= argc)
                return usage(std::cerr);
            json_path = argv[i];
        } else if (arg == "--github") {
            github = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "emstress-lint: unknown option " << arg
                      << "\n";
            return usage(std::cerr);
        } else {
            files.emplace_back(arg);
        }
    }
    if (roots.empty() && files.empty()
        && compile_commands_path.empty())
        return usage(std::cerr);

    Options options;
    if (!fixlist_path.empty()) {
        std::string text;
        if (!readFile(fixlist_path, text)) {
            std::cerr << "emstress-lint: cannot read fix-list "
                      << fixlist_path << "\n";
            return 2;
        }
        options.fixlist =
            emstress::lint::parseFixList(text, &std::cerr);
    }

    for (const fs::path &root : roots) {
        std::error_code ec;
        fs::recursive_directory_iterator it(root, ec), end;
        if (ec) {
            std::cerr << "emstress-lint: cannot walk " << root
                      << ": " << ec.message() << "\n";
            return 2;
        }
        for (; it != end; it.increment(ec)) {
            if (ec) {
                std::cerr << "emstress-lint: walk error under "
                          << root << ": " << ec.message() << "\n";
                return 2;
            }
            if (it->is_regular_file() && isSourcePath(it->path())
                && !inTestdataUnder(it->path(), root))
                files.push_back(it->path());
        }
    }

    // Translation units named by the compile database. When roots
    // are given they bound the lint's scope: DB entries outside
    // every root (test binaries, the lint's own sources) are
    // skipped, so `--root src --compile-commands ...` lints exactly
    // the configured TUs of src/ plus their include closure. The
    // canonical-key dedupe below handles root/DB overlap.
    if (!compile_commands_path.empty()) {
        std::string text;
        if (!readFile(compile_commands_path, text)) {
            std::cerr
                << "emstress-lint: cannot read compile commands "
                << compile_commands_path << "\n";
            return 2;
        }
        const auto underARoot = [&](const fs::path &p) {
            if (roots.empty())
                return true;
            const std::string key = canonicalKey(p);
            for (const fs::path &root : roots) {
                const std::string rk = canonicalKey(root);
                if (key.size() > rk.size() + 1
                    && key.compare(0, rk.size(), rk) == 0
                    && key[rk.size()] == '/')
                    return true;
            }
            return false;
        };
        for (fs::path &p : parseCompileCommands(text))
            if (isSourcePath(p) && fs::exists(p) && underARoot(p))
                files.push_back(std::move(p));
    }

    // Close over quoted includes so project-wide analysis sees the
    // headers of every TU even when only .cc paths were given.
    // Include paths resolve against the including file's directory
    // and against each root (the tree's `#include "service/wire.h"`
    // convention is root-relative).
    std::set<std::string> seen;
    std::vector<fs::path> ordered;
    std::map<std::string, std::string> texts;
    std::vector<fs::path> queue = files;
    while (!queue.empty()) {
        const fs::path p = queue.front();
        queue.erase(queue.begin());
        const std::string key = canonicalKey(p);
        if (!seen.insert(key).second)
            continue;
        std::string text;
        if (!readFile(p, text)) {
            std::cerr << "emstress-lint: cannot read " << p << "\n";
            return 2;
        }
        ordered.push_back(p);
        for (const std::string &inc : quotedIncludes(text)) {
            std::vector<fs::path> cands;
            cands.push_back(p.parent_path() / inc);
            for (const fs::path &root : roots)
                cands.push_back(root / inc);
            for (const fs::path &cand : cands) {
                if (!fs::exists(cand) || !isSourcePath(cand))
                    continue;
                queue.push_back(cand);
                break;
            }
        }
        texts.emplace(key, std::move(text));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const fs::path &a, const fs::path &b) {
                  return a.generic_string() < b.generic_string();
              });

    std::vector<Finding> all;
    std::size_t files_scanned = 0;
    for (const fs::path &file : ordered) {
        const std::string &text = texts.at(canonicalKey(file));
        ++files_scanned;
        Options file_options = options;
        // Feed the companion header's member declarations to R2.
        const std::string ext = file.extension().string();
        if (ext == ".cc" || ext == ".cpp") {
            fs::path header = file;
            header.replace_extension(".h");
            std::string companion;
            if (readFile(header, companion))
                file_options.companion = std::move(companion);
        }
        std::vector<Finding> findings =
            emstress::lint::analyzeSourceAll(file.generic_string(),
                                             text, file_options);
        all.insert(all.end(),
                   std::make_move_iterator(findings.begin()),
                   std::make_move_iterator(findings.end()));
    }

    // Cross-TU pass over the whole closure at once.
    {
        std::vector<ProjectFile> project;
        project.reserve(ordered.size());
        for (const fs::path &file : ordered)
            project.push_back({file.generic_string(),
                               texts.at(canonicalKey(file))});
        std::vector<Finding> findings =
            emstress::lint::analyzeProject(project, options);
        all.insert(all.end(),
                   std::make_move_iterator(findings.begin()),
                   std::make_move_iterator(findings.end()));
    }

    std::size_t total = 0;
    for (const Finding &f : all) {
        if (f.suppressed)
            continue;
        ++total;
        std::cout << emstress::lint::formatFinding(f) << "\n";
        for (const std::string &w : f.witness)
            std::cout << "    | " << w << "\n";
        if (github) {
            std::string msg = f.message;
            for (char &c : msg)
                if (c == '\n')
                    c = ' ';
            std::cout << "::error file=" << f.file
                      << ",line=" << f.line
                      << ",title=emstress-lint " << f.rule
                      << "::" << msg << "\n";
        }
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::cerr << "emstress-lint: cannot write " << json_path
                      << "\n";
            return 2;
        }
        out << emstress::lint::findingsToJson(all, files_scanned);
    }

    std::cout << "emstress-lint: " << files_scanned << " files, "
              << total << " finding" << (total == 1 ? "" : "s")
              << "\n";
    return total == 0 ? 0 : 1;
}
