/**
 * @file
 * emstress-lint command-line driver. Walks the given roots (or
 * explicit files), runs the determinism rules over every .h/.cc, and
 * prints `file:line: [Rn] message` diagnostics.
 *
 *   emstress-lint [--root DIR]... [--fix-list FILE] [files...]
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error. The file walk
 * is sorted so output order — like everything else in this
 * repository — is deterministic.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using emstress::lint::Finding;
using emstress::lint::Options;

namespace {

int
usage(std::ostream &os)
{
    os << "usage: emstress-lint [--root DIR]... [--fix-list FILE]"
          " [files...]\n"
          "Static determinism lint for emstress (rules R1-R6, see"
          " tools/lint/README.md).\n";
    return 2;
}

bool
isSourcePath(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp"
        || ext == ".hpp";
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    std::vector<fs::path> files;
    fs::path fixlist_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc)
                return usage(std::cerr);
            roots.emplace_back(argv[i]);
        } else if (arg == "--fix-list") {
            if (++i >= argc)
                return usage(std::cerr);
            fixlist_path = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "emstress-lint: unknown option " << arg
                      << "\n";
            return usage(std::cerr);
        } else {
            files.emplace_back(arg);
        }
    }
    if (roots.empty() && files.empty())
        return usage(std::cerr);

    Options options;
    if (!fixlist_path.empty()) {
        std::string text;
        if (!readFile(fixlist_path, text)) {
            std::cerr << "emstress-lint: cannot read fix-list "
                      << fixlist_path << "\n";
            return 2;
        }
        options.fixlist =
            emstress::lint::parseFixList(text, &std::cerr);
    }

    for (const fs::path &root : roots) {
        std::error_code ec;
        fs::recursive_directory_iterator it(root, ec), end;
        if (ec) {
            std::cerr << "emstress-lint: cannot walk " << root
                      << ": " << ec.message() << "\n";
            return 2;
        }
        for (; it != end; it.increment(ec)) {
            if (ec) {
                std::cerr << "emstress-lint: walk error under "
                          << root << ": " << ec.message() << "\n";
                return 2;
            }
            if (it->is_regular_file() && isSourcePath(it->path()))
                files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());

    std::size_t total = 0;
    std::size_t files_scanned = 0;
    for (const fs::path &file : files) {
        std::string text;
        if (!readFile(file, text)) {
            std::cerr << "emstress-lint: cannot read " << file
                      << "\n";
            return 2;
        }
        ++files_scanned;
        Options file_options = options;
        // Feed the companion header's member declarations to R2.
        const std::string ext = file.extension().string();
        if (ext == ".cc" || ext == ".cpp") {
            fs::path header = file;
            header.replace_extension(".h");
            std::string companion;
            if (readFile(header, companion))
                file_options.companion = std::move(companion);
        }
        const std::vector<Finding> findings =
            emstress::lint::analyzeSource(file.generic_string(),
                                          text, file_options);
        for (const Finding &f : findings)
            std::cout << emstress::lint::formatFinding(f) << "\n";
        total += findings.size();
    }
    std::cout << "emstress-lint: " << files_scanned << " files, "
              << total << " finding" << (total == 1 ? "" : "s")
              << "\n";
    return total == 0 ? 0 : 1;
}
