/**
 * @file
 * emstress-client — CLI for the emstressd search service.
 *
 * Usage:
 *   emstress-client [--host H] [--port N] <command> [args]
 *
 * Commands:
 *   ping                 version handshake; exit 0 on success
 *   submit [spec flags]  submit a job, stream its progress, print
 *                        the result
 *   cancel ID            request cancellation of job ID
 *   metrics              print the server's metrics snapshot (JSON)
 *   shutdown             ask the server to exit
 *
 * Spec flags of submit:
 *   --tenant T           accounting tenant        (default "default")
 *   --platform P         a72 | a53 | athlon       (default a72)
 *   --metric M           em | droop | p2p         (default em)
 *   --platform-seed N    platform noise seed      (default 42)
 *   --seed N             GA master seed           (default 1)
 *   --population N --generations N --restarts N --kernel-length N
 *   --sa-samples N --duration S
 *   --class C            batch | interactive      (default batch)
 *   --deadline S         target completion latency (observability)
 *   --resume-token N     nonzero: stream with crash tolerance — on
 *                        a dropped connection the client reconnects
 *                        with bounded backoff, resumes via kResume,
 *                        and falls back to re-submitting the spec
 *                        under the same token after a daemon restart
 *   --quiet              suppress per-generation progress lines
 *   --verify-direct      after completion, rerun the same spec
 *                        in-process with GaEngine and require the
 *                        streamed result to match bit for bit —
 *                        the CI smoke check of the service's
 *                        determinism contract
 */

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "ga/ga_engine.h"
#include "service/job.h"
#include "service/transport_socket.h"

namespace {

using namespace emstress;

int
usage()
{
    std::cerr << "usage: emstress-client [--host H] [--port N]"
                 " ping|submit|cancel|metrics|shutdown [flags]\n"
                 "(see the file header for submit flags)\n";
    return 2;
}

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Bitwise comparison of a streamed result against a direct rerun. */
bool
verifyDirect(const service::JobSpec &spec,
             const service::JobResult &served)
{
    auto evaluator = service::makePlatformEvaluator(spec);
    ga::GaEngine engine(service::presetPool(spec.platform), spec.ga);
    const ga::GaResult direct = engine.run(*evaluator);
    const isa::InstructionPool &pool =
        service::presetPool(spec.platform);

    std::size_t mismatches = 0;
    auto check = [&](bool ok, const std::string &what) {
        if (!ok) {
            ++mismatches;
            std::cerr << "verify-direct MISMATCH: " << what << '\n';
        }
    };
    check(bits(served.ga.best_fitness) == bits(direct.best_fitness),
          "best_fitness bits");
    check(served.ga.best.serialize(pool) == direct.best.serialize(pool),
          "best kernel");
    check(bits(served.ga.estimated_lab_seconds)
              == bits(direct.estimated_lab_seconds),
          "estimated_lab_seconds bits");
    check(served.ga.eval_stats.evals == direct.eval_stats.evals,
          "eval_stats.evals");
    check(served.ga.eval_stats.cache_hits
              == direct.eval_stats.cache_hits,
          "eval_stats.cache_hits");
    check(served.ga.history.size() == direct.history.size(),
          "history length");
    if (served.ga.history.size() == direct.history.size()) {
        for (std::size_t i = 0; i < direct.history.size(); ++i) {
            const ga::GenerationRecord &a = served.ga.history[i];
            const ga::GenerationRecord &b = direct.history[i];
            check(a.generation == b.generation
                      && bits(a.best_fitness) == bits(b.best_fitness)
                      && bits(a.mean_fitness) == bits(b.mean_fitness)
                      && a.best.serialize(pool)
                             == b.best.serialize(pool),
                  "history[" + std::to_string(i) + "]");
        }
    }
    return mismatches == 0;
}

int
runSubmit(const std::string &host, std::uint16_t port, int argc,
          char **argv, int first)
{
    service::JobSpec spec;
    spec.ga.population = 16;
    spec.ga.generations = 10;
    bool quiet = false;
    bool verify = false;
    std::uint64_t resume_token = 0;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tenant") {
            spec.tenant = next();
        } else if (arg == "--platform") {
            if (!service::presetFromName(next(), spec.platform)) {
                std::cerr << "unknown platform\n";
                return 2;
            }
        } else if (arg == "--metric") {
            const std::string m = next();
            if (m == "em")
                spec.metric = core::VirusMetric::EmAmplitude;
            else if (m == "droop")
                spec.metric = core::VirusMetric::MaxDroop;
            else if (m == "p2p")
                spec.metric = core::VirusMetric::PeakToPeak;
            else {
                std::cerr << "unknown metric\n";
                return 2;
            }
        } else if (arg == "--platform-seed") {
            spec.platform_seed = std::stoull(next());
        } else if (arg == "--seed") {
            spec.ga.seed = std::stoull(next());
        } else if (arg == "--population") {
            spec.ga.population = std::stoul(next());
        } else if (arg == "--generations") {
            spec.ga.generations = std::stoul(next());
        } else if (arg == "--restarts") {
            spec.ga.restarts = std::stoul(next());
        } else if (arg == "--kernel-length") {
            spec.ga.kernel_length = std::stoul(next());
        } else if (arg == "--sa-samples") {
            spec.eval.sa_samples = std::stoul(next());
        } else if (arg == "--duration") {
            spec.eval.duration_s = std::stod(next());
        } else if (arg == "--class") {
            const std::string c = next();
            if (c == "batch")
                spec.job_class = service::JobClass::kBatch;
            else if (c == "interactive")
                spec.job_class = service::JobClass::kInteractive;
            else {
                std::cerr << "unknown class (batch|interactive)\n";
                return 2;
            }
        } else if (arg == "--deadline") {
            spec.deadline_s = std::stod(next());
        } else if (arg == "--resume-token") {
            resume_token = std::stoull(next());
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--verify-direct") {
            verify = true;
        } else {
            return usage();
        }
    }

    // A nonzero resume token switches to the crash-tolerant client:
    // same stream semantics, but dropped connections reconnect,
    // kResume, and fall back to resubmission after a daemon restart.
    std::unique_ptr<service::SocketClient> plain;
    std::unique_ptr<service::ReconnectingClient> durable;
    service::Submission sub;
    std::function<service::JobEvent()> next_event;
    if (resume_token != 0) {
        service::ReconnectingClient::Options opts;
        opts.host = host;
        opts.port = port;
        opts.resume_token = resume_token;
        // CI restarts the daemon within a couple of seconds; retry
        // long enough to ride that out without stalling failures.
        opts.retry.max_attempts = 12;
        opts.retry.backoff_s = 0.25;
        opts.retry.backoff_factor = 1.5;
        opts.retry.backoff_cap_s = 2.0;
        durable = std::make_unique<service::ReconnectingClient>(
            std::move(opts));
        sub = durable->submit(spec);
        next_event = [&]() { return durable->nextEvent(); };
    } else {
        plain = std::make_unique<service::SocketClient>(host, port);
        sub = plain->submit(spec);
        next_event = [&]() { return plain->nextEvent(sub.id); };
    }
    if (!sub.accepted) {
        std::cerr << "rejected: " << sub.reject_reason << '\n';
        return 1;
    }
    std::cout << "job " << sub.id << " accepted" << std::endl;

    for (;;) {
        const service::JobEvent ev = next_event();
        if (durable)
            sub.id = durable->id(); // changes after a resubmit
        if (ev.type == service::JobEventType::kProgress) {
            if (!quiet)
                std::cout << "gen " << ev.progress.generation
                          << " (" << ev.progress.generations_done
                          << '/' << ev.progress.generations_total
                          << ") best " << ev.progress.best_fitness
                          << " mean " << ev.progress.mean_fitness
                          << std::endl;
            continue;
        }
        if (ev.type == service::JobEventType::kCancelled) {
            std::cout << "job " << sub.id << " cancelled"
                      << std::endl;
            return 3;
        }
        if (ev.type == service::JobEventType::kFailed) {
            std::cerr << "job " << sub.id << " failed: " << ev.error
                      << '\n';
            return 1;
        }
        // kCompleted
        const service::JobResult &res = *ev.result;
        std::cout << "job " << sub.id << " completed"
                  << (res.from_artifact_store
                          ? " (artifact store)"
                          : "")
                  << "\n  metric            " << res.metric
                  << "\n  best fitness      " << res.ga.best_fitness
                  << "\n  dominant freq     "
                  << res.ga.best_detail.dominant_freq_hz / 1e6
                  << " MHz\n  est lab seconds   "
                  << res.ga.estimated_lab_seconds
                  << "\n  fresh evals       "
                  << res.ga.eval_stats.evals
                  << "\n  cache hits        "
                  << res.ga.eval_stats.cache_hits
                  << "\n  fingerprint       " << std::hex
                  << res.fingerprint << std::dec << std::endl;
        if (durable && (durable->resumes() || durable->resubmits()))
            std::cout << "stream recovered: " << durable->resumes()
                      << " resume(s), " << durable->resubmits()
                      << " resubmit(s)" << std::endl;
        if (verify) {
            std::cout << "verify-direct: rerunning spec in-process..."
                      << std::endl;
            if (!verifyDirect(spec, res)) {
                std::cerr << "verify-direct FAILED\n";
                return 1;
            }
            std::cout << "verify-direct PASSED (bit-identical)"
                      << std::endl;
        }
        return 0;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int i = 1;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host" && i + 1 < argc)
            host = argv[++i];
        else if (arg == "--port" && i + 1 < argc)
            port = static_cast<std::uint16_t>(
                std::stoul(argv[++i]));
        else
            break;
    }
    if (i >= argc || port == 0) {
        if (port == 0)
            std::cerr << "--port is required\n";
        return usage();
    }
    const std::string command = argv[i++];

    try {
        if (command == "submit")
            return runSubmit(host, port, argc, argv, i);
        emstress::service::SocketClient client(host, port);
        if (command == "ping") {
            if (client.ping()) {
                std::cout << "pong" << std::endl;
                return 0;
            }
            std::cerr << "ping failed\n";
            return 1;
        }
        if (command == "cancel") {
            if (i >= argc)
                return usage();
            const bool ok = client.cancel(std::stoull(argv[i]));
            std::cout << (ok ? "cancelled" : "not cancellable")
                      << std::endl;
            return ok ? 0 : 1;
        }
        if (command == "metrics") {
            std::cout << client.metricsJson() << std::endl;
            return 0;
        }
        if (command == "shutdown") {
            return client.shutdownServer() ? 0 : 1;
        }
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "emstress-client: " << e.what() << '\n';
        return 1;
    }
}
