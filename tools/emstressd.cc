/**
 * @file
 * emstressd — the virus-search service daemon. Stands up a
 * SearchService (shared worker fleet, weighted-fair scheduler,
 * artifact store) behind the loopback socket protocol and serves
 * until a client sends kShutdown.
 *
 * Usage:
 *   emstressd [--port N] [--port-file PATH] [--fleet-threads N]
 *             [--runners N] [--max-jobs N] [--max-jobs-per-tenant N]
 *             [--tenant-weight NAME=W]... [--artifact-ttl N]
 *             [--artifact-dir PATH] [--orphan-grace N]
 *             [--no-artifacts] [--metrics]
 *
 * --port 0 (the default) binds an ephemeral port; the resolved port
 * is printed on stdout ("emstressd listening on port N") and, with
 * --port-file, written alone to PATH so scripts can pick it up.
 *
 * --artifact-dir makes the store persistent: completed artifacts
 * spill to PATH and a restarted daemon pointed at the same PATH
 * serves them bit-identical without re-running searches (the scan
 * count is printed at startup). --orphan-grace N sets how many
 * completed searches a dropped stream's job survives awaiting a
 * client kResume before the reaper collects it (0 = forever).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "service/scheduler.h"
#include "service/transport_socket.h"
#include "util/metrics.h"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--port N] [--port-file PATH] [--fleet-threads N]\n"
           "       [--runners N] [--max-jobs N]"
           " [--max-jobs-per-tenant N]\n"
           "       [--tenant-weight NAME=W]... [--artifact-ttl N]\n"
           "       [--artifact-dir PATH] [--orphan-grace N]\n"
           "       [--no-artifacts] [--metrics]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emstress;
    service::ServiceConfig config;
    config.fleet_threads = 0; // auto
    config.runners = 2;
    service::SocketServer::Options options;
    std::string port_file;
    bool metrics_on = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            options.port =
                static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--port-file") {
            port_file = next();
        } else if (arg == "--fleet-threads") {
            config.fleet_threads = std::stoul(next());
        } else if (arg == "--runners") {
            config.runners = std::stoul(next());
            if (config.runners == 0) {
                std::cerr << "--runners must be >= 1 for a daemon\n";
                return 2;
            }
        } else if (arg == "--max-jobs") {
            config.max_jobs_in_flight = std::stoul(next());
        } else if (arg == "--max-jobs-per-tenant") {
            config.max_jobs_per_tenant = std::stoul(next());
        } else if (arg == "--tenant-weight") {
            const std::string kv = next();
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                std::cerr << "--tenant-weight wants NAME=W\n";
                return 2;
            }
            config.tenant_weights[kv.substr(0, eq)] =
                std::stod(kv.substr(eq + 1));
        } else if (arg == "--artifact-ttl") {
            config.artifacts.ttl_epochs = std::stoul(next());
        } else if (arg == "--artifact-dir") {
            config.artifacts.spill_dir = next();
        } else if (arg == "--orphan-grace") {
            config.orphan_grace_searches = std::stoul(next());
        } else if (arg == "--no-artifacts") {
            config.use_artifact_store = false;
        } else if (arg == "--metrics") {
            metrics_on = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (metrics_on)
        emstress::metrics::setEnabled(true);

    try {
        service::SearchService svc(config);
        if (!config.artifacts.spill_dir.empty()) {
            std::cout << "emstressd artifact store: "
                      << svc.artifacts().size()
                      << " artifact(s) indexed from "
                      << config.artifacts.spill_dir << std::endl;
        }
        service::SocketServer server(svc, options);
        std::cout << "emstressd listening on port " << server.port()
                  << std::endl;
        if (!port_file.empty()) {
            std::ofstream pf(port_file);
            pf << server.port() << '\n';
        }
        server.serve();
        std::cout << "emstressd shutting down" << std::endl;
    } catch (const std::exception &e) {
        std::cerr << "emstressd: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
