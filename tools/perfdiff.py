#!/usr/bin/env python3
"""Compare BENCH_perf.json perf ledgers against a checked-in baseline.

Usage:
    perfdiff.py BASELINE CURRENT [--wall-warn-pct 25] [--strict]

BASELINE and CURRENT are files or directories; directories are scanned
for BENCH_perf.*.json and ledgers are matched by their "bench" field.
For every bench present on both sides the script prints a per-phase
delta table (wall seconds, per-thread CPU seconds, entry counts) and a
counter delta table.

The comparison is warn-only by default: wall-clock time depends on the
host, so CI treats regressions as a signal to read, not a gate
(--strict turns warnings into a non-zero exit for local bisecting).
Counters, by contrast, are deterministic for a fixed budget — a
counter delta on an unchanged budget means the workload itself
changed, which is exactly what a silent perf regression looks like.

Writes the same report as Markdown to $GITHUB_STEP_SUMMARY when set.
Standard library only.
"""

import argparse
import glob
import json
import os
import sys


def load_ledgers(path):
    """Map bench name -> parsed ledger for a file or directory."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_perf.*.json")))
    else:
        files = [path]
    ledgers = {}
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable ledger {f}: {err}",
                  file=sys.stderr)
            continue
        if data.get("schema") != "emstress-bench-perf-v1":
            print(f"warning: {f} is not an emstress-bench-perf-v1 ledger",
                  file=sys.stderr)
            continue
        ledgers[data.get("bench", os.path.basename(f))] = data
    return ledgers


def fmt_delta_pct(base, cur):
    if base == 0:
        return "n/a" if cur == 0 else "new"
    return f"{100.0 * (cur - base) / base:+.1f}%"


def markdown_table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(str(c) for c in row) + " |"
              for row in rows]
    return "\n".join(lines)


def diff_bench(name, base, cur, wall_warn_pct):
    """Return (markdown report, warning list) for one bench."""
    out = [f"### {name} ({base.get('mode', '?')} vs "
           f"{cur.get('mode', '?')}, threads "
           f"{base.get('threads', '?')} -> {cur.get('threads', '?')})"]
    warnings = []

    phase_rows = []
    names = sorted(set(base.get("phases", {})) | set(cur.get("phases", {})))
    for phase in names:
        # A phase absent from one ledger (instrumentation added or
        # removed between revisions) is annotated, never warned on:
        # there is no meaningful wall-time delta against nothing.
        in_base = phase in base.get("phases", {})
        in_cur = phase in cur.get("phases", {})
        b = base.get("phases", {}).get(phase, {})
        c = cur.get("phases", {}).get(phase, {})
        b_wall = b.get("wall_s", 0.0)
        c_wall = c.get("wall_s", 0.0)
        if not in_base:
            pct = "(new)"
        elif not in_cur:
            pct = "(removed)"
        else:
            pct = fmt_delta_pct(b_wall, c_wall)
        phase_rows.append((phase,
                           f"{b_wall:.4f}" if in_base else "-",
                           f"{c_wall:.4f}" if in_cur else "-", pct,
                           f"{b.get('cpu_s', 0.0):.4f}" if in_base else "-",
                           f"{c.get('cpu_s', 0.0):.4f}" if in_cur else "-",
                           b.get("count", 0) if in_base else "-",
                           c.get("count", 0) if in_cur else "-"))
        if (in_base and in_cur and b_wall > 0
                and c_wall > b_wall * (1 + wall_warn_pct / 100.0)):
            warnings.append(
                f"{name}: phase '{phase}' wall time {b_wall:.4f}s -> "
                f"{c_wall:.4f}s ({pct})")
    if phase_rows:
        out.append(markdown_table(
            ("phase", "base wall_s", "cur wall_s", "delta",
             "base cpu_s", "cur cpu_s", "base n", "cur n"),
            phase_rows))
    else:
        out.append("_no phases recorded_")

    counter_rows = []
    names = sorted(set(base.get("counters", {}))
                   | set(cur.get("counters", {})))
    same_budget = base.get("mode") == cur.get("mode")
    for counter in names:
        # Distinguish a counter absent from a ledger (instrumentation
        # that didn't exist in that revision, e.g. state_updates vs
        # lu_solves after a solver-path change) from a recorded zero.
        # Only counters present on BOTH sides can signal a workload
        # change; one-sided counters are listed but never warned on.
        in_base = counter in base.get("counters", {})
        in_cur = counter in cur.get("counters", {})
        b = base.get("counters", {}).get(counter, 0)
        c = cur.get("counters", {}).get(counter, 0)
        if in_base and in_cur and b == c:
            continue
        if not in_base:
            delta = "(new)"
        elif not in_cur:
            delta = "(removed)"
        else:
            delta = fmt_delta_pct(b, c)
        counter_rows.append((counter,
                             b if in_base else "-",
                             c if in_cur else "-", delta))
        # Per-worker task splits depend on scheduling; everything else
        # is deterministic for a fixed budget.
        if in_base and in_cur and same_budget \
                and ".worker." not in counter:
            warnings.append(
                f"{name}: counter '{counter}' changed {b} -> {c} "
                f"under the same budget (workload changed?)")
    if counter_rows:
        out.append("")
        out.append(markdown_table(
            ("counter", "base", "current", "delta"), counter_rows))
    else:
        out.append("")
        out.append("_all counters identical_")
    return "\n".join(out), warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline ledger file or directory")
    ap.add_argument("current", help="current ledger file or directory")
    ap.add_argument("--wall-warn-pct", type=float, default=25.0,
                    help="warn when a phase's wall time regresses by "
                         "more than this percentage (default 25)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any warning fires")
    args = ap.parse_args()

    base = load_ledgers(args.baseline)
    cur = load_ledgers(args.current)

    sections = ["## Perf diff (BENCH_perf.json)"]
    warnings = []
    shared = sorted(set(base) & set(cur))
    if not shared:
        sections.append("_no benches present on both sides_")
    for name in shared:
        report, warns = diff_bench(name, base[name], cur[name],
                                   args.wall_warn_pct)
        sections.append(report)
        warnings.extend(warns)
    for name in sorted(set(cur) - set(base)):
        sections.append(f"### {name}\n_new bench (no baseline)_")
    for name in sorted(set(base) - set(cur)):
        sections.append(f"### {name}\n_missing from current run_")

    if warnings:
        sections.append("### Warnings")
        sections.append("\n".join(f"- {w}" for w in warnings))

    report = "\n\n".join(sections) + "\n"
    print(report)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(report)

    if warnings:
        print(f"{len(warnings)} warning(s); "
              + ("failing (--strict)" if args.strict
                 else "informational only"),
              file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
