#!/usr/bin/env python3
"""Compare BENCH_perf.json perf ledgers against a checked-in baseline.

Usage:
    perfdiff.py BASELINE CURRENT [--wall-warn-pct 25] [--strict]
                [--tolerances FILE]

BASELINE and CURRENT are files or directories; directories are scanned
for BENCH_perf.*.json and ledgers are matched by their "bench" field.
For every bench present on both sides the script prints a per-phase
delta table (wall seconds, per-thread CPU seconds, entry counts) and a
counter delta table.

The comparison is warn-only by default: wall-clock time depends on the
host, so CI treats regressions as a signal to read, not a gate
(--strict turns warnings into a non-zero exit for local bisecting).
Counters, by contrast, are deterministic for a fixed budget — a
counter delta on an unchanged budget means the workload itself
changed, which is exactly what a silent perf regression looks like.

Per-bench and per-phase tolerances come from a checked-in config
(--tolerances FILE, or perfdiff_tolerances.json inside the baseline
directory when present), schema emstress-perfdiff-tolerances-v1:

    {
      "schema": "emstress-perfdiff-tolerances-v1",
      "default_wall_warn_pct": 25.0,
      "default_wall_fail_pct": 200.0,
      "benches": {
        "perf_kernels": {
          "fail_on_regression": true,
          "wall_fail_pct": 200.0,
          "phases": {"platform.stream": {"wall_warn_pct": 40.0}}
        }
      }
    }

Threshold resolution is most-specific-wins: phase override, then
bench, then config default, then the command line. A bench marked
fail_on_regression turns its wall regressions beyond wall_fail_pct —
and its same-budget counter changes — into FAILURES that exit
non-zero even without --strict: the kernel microbenchmarks guard the
evaluation hot path, where a silent slowdown multiplies into every
GA generation.

Writes the same report as Markdown to $GITHUB_STEP_SUMMARY when set.
Standard library only.
"""

import argparse
import glob
import json
import os
import sys

TOLERANCES_SCHEMA = "emstress-perfdiff-tolerances-v1"
TOLERANCES_BASENAME = "perfdiff_tolerances.json"


def load_ledgers(path):
    """Map bench name -> parsed ledger for a file or directory."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_perf.*.json")))
    else:
        files = [path]
    ledgers = {}
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable ledger {f}: {err}",
                  file=sys.stderr)
            continue
        if data.get("schema") != "emstress-bench-perf-v1":
            print(f"warning: {f} is not an emstress-bench-perf-v1 ledger",
                  file=sys.stderr)
            continue
        ledgers[data.get("bench", os.path.basename(f))] = data
    return ledgers


def load_tolerances(path):
    """Parse a tolerance config; a bad config is a hard error (a
    silently-ignored gate is worse than no gate)."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != TOLERANCES_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {TOLERANCES_SCHEMA!r}, "
            f"got {data.get('schema')!r}")
    return data


class Tolerances:
    """Threshold resolution: phase override -> bench -> config default
    -> CLI value."""

    def __init__(self, config, cli_wall_warn_pct):
        self.config = config or {}
        self.cli_wall_warn_pct = cli_wall_warn_pct

    def _bench(self, bench):
        return self.config.get("benches", {}).get(bench, {})

    def _phase(self, bench, phase):
        return self._bench(bench).get("phases", {}).get(phase, {})

    def wall_warn_pct(self, bench, phase):
        for scope in (self._phase(bench, phase), self._bench(bench),
                      {"wall_warn_pct":
                       self.config.get("default_wall_warn_pct")}):
            if scope.get("wall_warn_pct") is not None:
                return float(scope["wall_warn_pct"])
        return self.cli_wall_warn_pct

    def wall_fail_pct(self, bench, phase):
        for scope in (self._phase(bench, phase), self._bench(bench),
                      {"wall_fail_pct":
                       self.config.get("default_wall_fail_pct")}):
            if scope.get("wall_fail_pct") is not None:
                return float(scope["wall_fail_pct"])
        return 200.0

    def fail_on_regression(self, bench):
        return bool(self._bench(bench).get("fail_on_regression", False))


def fmt_delta_pct(base, cur):
    if base == 0:
        return "n/a" if cur == 0 else "new"
    return f"{100.0 * (cur - base) / base:+.1f}%"


def markdown_table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(str(c) for c in row) + " |"
              for row in rows]
    return "\n".join(lines)


def diff_bench(name, base, cur, tol):
    """Return (markdown report, warning list, failure list)."""
    out = [f"### {name} ({base.get('mode', '?')} vs "
           f"{cur.get('mode', '?')}, threads "
           f"{base.get('threads', '?')} -> {cur.get('threads', '?')})"]
    warnings = []
    failures = []
    gate = tol.fail_on_regression(name)

    phase_rows = []
    names = sorted(set(base.get("phases", {})) | set(cur.get("phases", {})))
    for phase in names:
        # A phase absent from one ledger (instrumentation added or
        # removed between revisions) is annotated, never warned on:
        # there is no meaningful wall-time delta against nothing.
        in_base = phase in base.get("phases", {})
        in_cur = phase in cur.get("phases", {})
        b = base.get("phases", {}).get(phase, {})
        c = cur.get("phases", {}).get(phase, {})
        b_wall = b.get("wall_s", 0.0)
        c_wall = c.get("wall_s", 0.0)
        if not in_base:
            pct = "(new)"
        elif not in_cur:
            pct = "(removed)"
        else:
            pct = fmt_delta_pct(b_wall, c_wall)
        phase_rows.append((phase,
                           f"{b_wall:.4f}" if in_base else "-",
                           f"{c_wall:.4f}" if in_cur else "-", pct,
                           f"{b.get('cpu_s', 0.0):.4f}" if in_base else "-",
                           f"{c.get('cpu_s', 0.0):.4f}" if in_cur else "-",
                           b.get("count", 0) if in_base else "-",
                           c.get("count", 0) if in_cur else "-"))
        if not (in_base and in_cur and b_wall > 0):
            continue
        warn_pct = tol.wall_warn_pct(name, phase)
        fail_pct = tol.wall_fail_pct(name, phase)
        if gate and c_wall > b_wall * (1 + fail_pct / 100.0):
            failures.append(
                f"{name}: phase '{phase}' wall time {b_wall:.4f}s -> "
                f"{c_wall:.4f}s ({pct}) exceeds the {fail_pct:.0f}% "
                f"fail tolerance")
        elif c_wall > b_wall * (1 + warn_pct / 100.0):
            warnings.append(
                f"{name}: phase '{phase}' wall time {b_wall:.4f}s -> "
                f"{c_wall:.4f}s ({pct})")
    if phase_rows:
        out.append(markdown_table(
            ("phase", "base wall_s", "cur wall_s", "delta",
             "base cpu_s", "cur cpu_s", "base n", "cur n"),
            phase_rows))
    else:
        out.append("_no phases recorded_")

    counter_rows = []
    names = sorted(set(base.get("counters", {}))
                   | set(cur.get("counters", {})))
    same_budget = base.get("mode") == cur.get("mode")
    for counter in names:
        # Distinguish a counter absent from a ledger (instrumentation
        # that didn't exist in that revision, e.g. state_updates vs
        # lu_solves after a solver-path change) from a recorded zero.
        # Only counters present on BOTH sides can signal a workload
        # change; one-sided counters are listed but never warned on.
        in_base = counter in base.get("counters", {})
        in_cur = counter in cur.get("counters", {})
        b = base.get("counters", {}).get(counter, 0)
        c = cur.get("counters", {}).get(counter, 0)
        if in_base and in_cur and b == c:
            continue
        if not in_base:
            delta = "(new)"
        elif not in_cur:
            delta = "(removed)"
        else:
            delta = fmt_delta_pct(b, c)
        counter_rows.append((counter,
                             b if in_base else "-",
                             c if in_cur else "-", delta))
        # Per-worker task splits depend on scheduling; everything else
        # is deterministic for a fixed budget.
        if in_base and in_cur and same_budget \
                and ".worker." not in counter:
            msg = (f"{name}: counter '{counter}' changed {b} -> {c} "
                   f"under the same budget (workload changed?)")
            (failures if gate else warnings).append(msg)
    if counter_rows:
        out.append("")
        out.append(markdown_table(
            ("counter", "base", "current", "delta"), counter_rows))
    else:
        out.append("")
        out.append("_all counters identical_")
    return "\n".join(out), warnings, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline ledger file or directory")
    ap.add_argument("current", help="current ledger file or directory")
    ap.add_argument("--wall-warn-pct", type=float, default=25.0,
                    help="warn when a phase's wall time regresses by "
                         "more than this percentage (default 25; "
                         "tolerance-config values take precedence)")
    ap.add_argument("--tolerances", metavar="FILE",
                    help="per-bench/per-phase tolerance config "
                         f"({TOLERANCES_SCHEMA}); defaults to "
                         f"{TOLERANCES_BASENAME} inside the baseline "
                         "directory when present")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any warning fires "
                         "(failures from fail_on_regression benches "
                         "always exit non-zero)")
    args = ap.parse_args()

    tol_path = args.tolerances
    if tol_path is None and os.path.isdir(args.baseline):
        candidate = os.path.join(args.baseline, TOLERANCES_BASENAME)
        if os.path.exists(candidate):
            tol_path = candidate
    tol_config = None
    if tol_path is not None:
        try:
            tol_config = load_tolerances(tol_path)
        except (OSError, json.JSONDecodeError, ValueError) as err:
            print(f"error: bad tolerance config: {err}", file=sys.stderr)
            return 2
    tol = Tolerances(tol_config, args.wall_warn_pct)

    base = load_ledgers(args.baseline)
    cur = load_ledgers(args.current)

    sections = ["## Perf diff (BENCH_perf.json)"]
    if tol_path:
        sections.append(f"_tolerances: {tol_path}_")
    warnings = []
    failures = []
    shared = sorted(set(base) & set(cur))
    if not shared:
        sections.append("_no benches present on both sides_")
    for name in shared:
        report, warns, fails = diff_bench(name, base[name], cur[name],
                                          tol)
        sections.append(report)
        warnings.extend(warns)
        failures.extend(fails)
    for name in sorted(set(cur) - set(base)):
        sections.append(f"### {name}\n_new bench (no baseline)_")
    for name in sorted(set(base) - set(cur)):
        sections.append(f"### {name}\n_missing from current run_")

    if failures:
        sections.append("### FAILURES")
        sections.append("\n".join(f"- {f}" for f in failures))
    if warnings:
        sections.append("### Warnings")
        sections.append("\n".join(f"- {w}" for w in warnings))

    report = "\n\n".join(sections) + "\n"
    print(report)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(report)

    if failures:
        print(f"{len(failures)} failure(s) from fail_on_regression "
              "benches; failing", file=sys.stderr)
        return 1
    if warnings:
        print(f"{len(warnings)} warning(s); "
              + ("failing (--strict)" if args.strict
                 else "informational only"),
              file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
